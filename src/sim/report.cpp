#include "sim/report.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "common/table.h"
#include "dtm/policy.h"

namespace th {

std::string
renderFig8(const Fig8Data &data)
{
    std::ostringstream out;
    out << "=== Figure 8: performance ===\n";
    Table t({"Class", "Base", "TH", "Pipe", "Fast", "3D", "Speedup"});
    for (const auto &g : data.groups)
        t.addRow({g.suite, fmtDouble(g.ipcGeomean[0], 3),
                  fmtDouble(g.ipcGeomean[1], 3),
                  fmtDouble(g.ipcGeomean[2], 3),
                  fmtDouble(g.ipcGeomean[3], 3),
                  fmtDouble(g.ipcGeomean[4], 3), fmtPercent(g.speedup)});
    t.print(out);
    out << strformat("mean-of-means speedup: %s (min %s %s, max %s %s)\n",
                     fmtPercent(data.speedupMeanOfMeans).c_str(),
                     data.minBenchmark.c_str(),
                     fmtPercent(data.minSpeedup).c_str(),
                     data.maxBenchmark.c_str(),
                     fmtPercent(data.maxSpeedup).c_str());
    return out.str();
}

std::string
renderFig9(const Fig9Data &data)
{
    std::ostringstream out;
    out << "=== Figure 9: power ===\n";
    Table t({"Config", "Total W", "Clock W", "Leak W", "Dynamic W"});
    for (const PowerBreakdown *b :
         {&data.planar, &data.noTh3d, &data.th3d})
        t.addRow({b->config, fmtDouble(b->totalW, 1),
                  fmtDouble(b->clockW, 1), fmtDouble(b->leakW, 1),
                  fmtDouble(b->dynamicW, 1)});
    t.print(out);
    out << strformat("power saving: min %s %s, max %s %s\n",
                     data.minSaving.name.c_str(),
                     fmtPercent(data.minSaving.saving).c_str(),
                     data.maxSaving.name.c_str(),
                     fmtPercent(data.maxSaving.saving).c_str());
    return out.str();
}

std::string
renderFig10(const Fig10Data &data)
{
    std::ostringstream out;
    out << "=== Figure 10: thermal ===\n";
    Table t({"Case", "App", "Total W", "Peak K", "Hot block"});
    auto row = [&](const char *label, const ThermalCase &tc) {
        t.addRow({label, tc.app, fmtDouble(tc.totalW, 1),
                  fmtDouble(tc.report.peakK, 1),
                  tc.report.hottestBlock});
    };
    row("worst planar", data.worstPlanar);
    row("worst 3D-noTH", data.worstNoTh3d);
    row("worst 3D-TH", data.worstTh3d);
    row("iso-power", data.isoPower);
    t.print(out);
    out << strformat("ROB delta (3D-TH vs planar, %s): %s K\n",
                     data.sameApp.c_str(),
                     fmtDouble(data.robDeltaK, 2).c_str());
    return out.str();
}

std::string
renderWidth(const WidthStudyData &data)
{
    std::ostringstream out;
    out << "=== Width prediction study ===\n";
    out << strformat("width prediction overall accuracy: %s over %zu "
                     "benchmarks\n",
                     fmtPercent(data.overallAccuracy).c_str(),
                     data.rows.size());
    return out.str();
}

namespace {

/**
 * The stable fast-vs-exact accuracy line. CI greps it, so its shape is
 * load-bearing: "error vs exact anchors: ipc X%, peak Y K, duty Z pp
 * (N anchors)".
 */
std::string
anchorErrorLine(double ipc_err, double peak_err_k, double duty_err_pp,
                int anchors)
{
    return strformat("error vs exact anchors: ipc %s, peak %s K, "
                     "duty %s pp (%d anchors)\n",
                     fmtPercent(ipc_err, 2).c_str(),
                     fmtDouble(peak_err_k, 3).c_str(),
                     fmtDouble(duty_err_pp, 2).c_str(), anchors);
}

/**
 * Shared DTM-outcome table shape, now core-count-aware: renderDtm
 * labels rows by configuration, renderMulticore by core (one row per
 * core plus a stack-aggregate row). One renderer means the single-core
 * study's bytes never drift from the many-core per-core rows.
 */
Table
dtmOutcomeTable(const char *entity)
{
    return Table({entity, "Start K", "Peak K", "Final K",
                  "Throttle duty", "t>trig ms", "Perf lost"});
}

/** One DTM-outcome row (single-core config or many-core core). */
void
addDtmOutcomeRow(Table &t, const std::string &label, double start_k,
                 double peak_k, double final_k, double duty,
                 double t_above_s, double perf_lost)
{
    t.addRow({label, fmtDouble(start_k, 1), fmtDouble(peak_k, 1),
              fmtDouble(final_k, 1), fmtPercent(duty),
              fmtDouble(t_above_s * 1e3, 1), fmtPercent(perf_lost)});
}

} // namespace

std::string
renderDtm(const DtmStudyData &data, const DtmOptions &opts)
{
    std::ostringstream out;
    out << strformat("=== Closed-loop DTM: %s, policy %s, trigger %s K "
                     "===\n", data.benchmark.c_str(),
                     dtmPolicyName(opts.policy),
                     fmtDouble(opts.triggers.triggerK, 1).c_str());
    Table t = dtmOutcomeTable("Config");
    for (const DtmCase &c : data.cases)
        addDtmOutcomeRow(t, configName(c.config), c.report.startPeakK,
                         c.report.peakK, c.report.finalPeakK,
                         c.report.throttleDuty,
                         c.report.timeAboveTriggerS, c.report.perfLost);
    t.print(out);
    // Only fast studies carry an error bound; the exact rendering stays
    // byte-identical to the pre-fast-path output.
    if (data.fast)
        out << anchorErrorLine(data.maxIpcErr, data.maxPeakErrK,
                               data.maxDutyErrPp, data.anchors);
    return out.str();
}

std::string
renderFamilySweep(const FamilySweepData &data,
                  const FamilySweepOptions &opts)
{
    std::ostringstream out;
    out << strformat(
        "=== Family sweep: %s on %s, %d triggers in [%s, %s] K (%s) "
        "===\n",
        data.benchmark.c_str(), configName(data.config),
        opts.triggerSteps, fmtDouble(opts.triggerLoK, 1).c_str(),
        fmtDouble(opts.triggerHiK, 1).c_str(),
        data.fast ? "fast" : "exact");
    Table t({"Policy", "Points", "Duty min", "Duty max", "Peak K max",
             "Perf lost max"});
    for (DtmPolicyKind pol : opts.policies) {
        size_t n = 0;
        double duty_min = 0.0, duty_max = 0.0, peak_max = 0.0,
               lost_max = 0.0;
        for (const auto &pt : data.points) {
            if (pt.policy != pol)
                continue;
            if (n == 0) {
                duty_min = duty_max = pt.report.throttleDuty;
                peak_max = pt.report.peakK;
                lost_max = pt.report.perfLost;
            } else {
                duty_min = std::min(duty_min, pt.report.throttleDuty);
                duty_max = std::max(duty_max, pt.report.throttleDuty);
                peak_max = std::max(peak_max, pt.report.peakK);
                lost_max = std::max(lost_max, pt.report.perfLost);
            }
            ++n;
        }
        if (n == 0)
            continue;
        t.addRow({dtmPolicyName(pol), strformat("%zu", n),
                  fmtPercent(duty_min), fmtPercent(duty_max),
                  fmtDouble(peak_max, 1), fmtPercent(lost_max)});
    }
    t.print(out);
    if (data.fast)
        out << anchorErrorLine(data.maxIpcErr, data.maxPeakErrK,
                               data.maxDutyErrPp, data.anchors);
    return out.str();
}

std::string
renderMulticore(const MulticoreReport &rep)
{
    std::ostringstream out;
    out << strformat("=== Many-core stack: %u cores, %u L2 banks on "
                     "%s, policy %s, trigger %s K ===\n",
                     rep.numCores, rep.l2Banks, rep.config.c_str(),
                     rep.policy.c_str(),
                     fmtDouble(rep.triggerK, 1).c_str());
    Table t = dtmOutcomeTable("Core");
    double duty_sum = 0.0, free_sum = 0.0;
    for (std::size_t c = 0; c < rep.cores.size(); ++c) {
        const MulticoreCoreStats &row = rep.cores[c];
        addDtmOutcomeRow(t, strformat("%zu:%s", c, row.benchmark.c_str()),
                         row.startPeakK, row.peakK, row.finalPeakK,
                         row.throttleDuty, row.timeAboveTriggerS,
                         row.perfLost);
        duty_sum += row.throttleDuty;
        free_sum += row.ipcFree;
    }
    const double n = rep.cores.empty()
        ? 1.0 : static_cast<double>(rep.cores.size());
    const double agg_lost = free_sum > 0.0
        ? std::max(0.0, 1.0 - rep.throughputIpc / free_sum)
        : 0.0;
    addDtmOutcomeRow(t, "stack", rep.startPeakK, rep.peakK,
                     rep.finalPeakK, duty_sum / n, rep.timeAboveTriggerS,
                     agg_lost);
    t.print(out);
    Table ct({"Core", "IPC free", "IPC eff", "L2 accesses",
              "Extra miss cyc", "Stall frac"});
    for (std::size_t c = 0; c < rep.cores.size(); ++c) {
        const MulticoreCoreStats &row = rep.cores[c];
        ct.addRow({strformat("%zu:%s", c, row.benchmark.c_str()),
                   fmtDouble(row.ipcFree, 3),
                   fmtDouble(row.ipcEffective, 3),
                   strformat("%llu",
                             (unsigned long long)row.l2Accesses),
                   fmtDouble(row.extraMissCycles, 2),
                   fmtPercent(row.contentionStallFrac)});
    }
    ct.print(out);
    Table bt({"Bank", "Accesses", "Occupancy", "Peak occ"});
    for (std::size_t b = 0; b < rep.banks.size(); ++b)
        bt.addRow({strformat("%zu", b),
                   strformat("%llu",
                             (unsigned long long)rep.banks[b].accesses),
                   fmtPercent(rep.banks[b].occupancy),
                   fmtPercent(rep.banks[b].peakOccupancy)});
    bt.print(out);
    out << strformat("stack throughput: %s IPC over %u intervals, "
                     "%s ms simulated\n",
                     fmtDouble(rep.throughputIpc, 3).c_str(),
                     rep.intervals,
                     fmtDouble(rep.totalTimeS * 1e3, 2).c_str());
    return out.str();
}

std::string
renderMulticoreStudy(const MulticoreStudyData &data)
{
    std::ostringstream out;
    out << "=== Many-core neighbor coupling ===\n";
    Table t({"Cores", "Config", "Stack peak K", "Hot core K",
             "Cool core K", "Max duty", "IPC loss", "Throughput"});
    // Hottest core at the smallest and largest no-herding stacks: the
    // delta between them is the neighbour-coupling signal CI asserts.
    double lo_hot = 0.0, hi_hot = 0.0;
    int lo_cores = 0, hi_cores = 0;
    for (const MulticoreCase &c : data.cases) {
        double hot = 0.0, cool = 0.0, duty = 0.0, free_sum = 0.0;
        for (std::size_t i = 0; i < c.report.cores.size(); ++i) {
            const MulticoreCoreStats &row = c.report.cores[i];
            hot = i == 0 ? row.peakK : std::max(hot, row.peakK);
            cool = i == 0 ? row.peakK : std::min(cool, row.peakK);
            duty = std::max(duty, row.throttleDuty);
            free_sum += row.ipcFree;
        }
        const double lost = free_sum > 0.0
            ? std::max(0.0, 1.0 - c.report.throughputIpc / free_sum)
            : 0.0;
        t.addRow({strformat("%d", c.cores), configName(c.config),
                  fmtDouble(c.report.peakK, 1), fmtDouble(hot, 1),
                  fmtDouble(cool, 1), fmtPercent(duty),
                  fmtPercent(lost),
                  fmtDouble(c.report.throughputIpc, 3)});
        if (c.config == ConfigKind::ThreeDNoTH) {
            if (lo_cores == 0 || c.cores < lo_cores) {
                lo_cores = c.cores;
                lo_hot = hot;
            }
            if (c.cores > hi_cores) {
                hi_cores = c.cores;
                hi_hot = hot;
            }
        }
    }
    t.print(out);
    if (lo_cores != 0 && hi_cores != lo_cores)
        out << strformat("neighbor coupling (no herding): hottest core "
                         "%s K at N=%d vs %s K at N=%d (delta %s K)\n",
                         fmtDouble(hi_hot, 2).c_str(), hi_cores,
                         fmtDouble(lo_hot, 2).c_str(), lo_cores,
                         fmtDouble(hi_hot - lo_hot, 2).c_str());
    return out.str();
}

std::string
renderCoreRun(const std::string &benchmark, const std::string &config,
              const CoreResult &r)
{
    return strformat("%s on %s: IPC %s, IPns %s, %llu insts in %llu "
                     "cycles\n", benchmark.c_str(), config.c_str(),
                     fmtDouble(r.perf.ipc(), 3).c_str(),
                     fmtDouble(r.ipns(), 2).c_str(),
                     (unsigned long long)r.perf.committedInsts.value(),
                     (unsigned long long)r.perf.cycles.value());
}

std::string
renderCounters(const System &sys)
{
    std::ostringstream out;
    const System::CacheStats cache = sys.coreCacheStats();
    out << strformat("\ncore cache: %llu hits, %llu misses\n",
                     (unsigned long long)cache.hits,
                     (unsigned long long)cache.misses);
    if (sys.storeEnabled()) {
        const StoreStats s = sys.storeStats();
        out << strformat(
            "store (%s): %llu hits, %llu misses, %llu stores, "
            "%llu evictions, %llu corrupt, %llu touch failures, "
            "%llu race lost\n",
            sys.storeDir().c_str(), (unsigned long long)s.hits,
            (unsigned long long)s.misses, (unsigned long long)s.stores,
            (unsigned long long)s.evictions,
            (unsigned long long)s.corrupt,
            (unsigned long long)s.touchFailures,
            (unsigned long long)s.raceLost);
    } else {
        out << "store: disabled (set TH_STORE_DIR or --store)\n";
    }
    return out.str();
}

} // namespace th
