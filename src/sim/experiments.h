/**
 * @file
 * Paper-experiment harnesses: one entry point per table/figure of the
 * evaluation section. The bench binaries print these; integration
 * tests assert tolerance bands around the anchors in paper_targets.h.
 */

#ifndef TH_SIM_EXPERIMENTS_H
#define TH_SIM_EXPERIMENTS_H

#include <array>
#include <string>
#include <vector>

#include "sim/system.h"
#include "thermal/hotspot.h"

namespace th {

/** Number of Figure 8 configurations. */
inline constexpr int kNumFig8Configs = 5;

/** Per-benchmark Figure 8 results. */
struct Fig8Benchmark
{
    std::string name;
    std::string suite;
    std::array<double, kNumFig8Configs> ipc{};
    std::array<double, kNumFig8Configs> ipns{};
    /** 3D vs Base performance gain (e.g. 0.47 = +47%). */
    double speedup = 0.0;
};

/** Per-suite geometric means (the paper's benchmark classes). */
struct Fig8Group
{
    std::string suite;
    std::array<double, kNumFig8Configs> ipcGeomean{};
    std::array<double, kNumFig8Configs> ipnsGeomean{};
    double speedup = 0.0;
};

/** Everything behind Figure 8(a-c). */
struct Fig8Data
{
    std::vector<Fig8Benchmark> benchmarks;
    std::vector<Fig8Group> groups;
    /** Mean of the per-group means (the paper's M-of-M). */
    std::array<double, kNumFig8Configs> ipcMeanOfMeans{};
    double speedupMeanOfMeans = 0.0;
    std::string minBenchmark, maxBenchmark;
    double minSpeedup = 0.0, maxSpeedup = 0.0;
};

/**
 * Run Figure 8 over @p benchmarks (empty = all registered). All
 * harnesses accept an optional CancelToken, polled by the underlying
 * core runs: a fired token unwinds the sweep with a Cancelled throw
 * (the thread pool rethrows it on the calling thread after draining).
 */
Fig8Data runFigure8(System &sys,
                    const std::vector<std::string> &benchmarks = {},
                    const CancelToken *cancel = nullptr);

/** Power breakdown of one configuration (Figure 9 pie). */
struct PowerBreakdown
{
    std::string config;
    double totalW = 0.0;
    double clockW = 0.0;
    double leakW = 0.0;
    double dynamicW = 0.0;
    /** Per-core-block dynamic watts (both cores combined). */
    std::array<double, kNumCoreBlocks> blockW{};
    double l2W = 0.0;
};

/** Per-application total-power savings (Section 5.2). */
struct PowerSaving
{
    std::string name;
    double baseW = 0.0;
    double th3dW = 0.0;
    /** Fractional saving of the 3D TH design vs planar. */
    double saving = 0.0;
};

/** Everything behind Figure 9(a-c). */
struct Fig9Data
{
    PowerBreakdown planar;     ///< Fig. 9(a): 2D, ~90 W.
    PowerBreakdown noTh3d;     ///< Fig. 9(b): 3D without herding.
    PowerBreakdown th3d;       ///< Fig. 9(c): 3D with Thermal Herding.
    std::vector<PowerSaving> savings;
    PowerSaving minSaving, maxSaving;
};

/**
 * Run Figure 9. The headline breakdowns use the paper's max-power
 * application (mpeg2); @p benchmarks (empty = all) feed the per-app
 * saving range.
 */
Fig9Data runFigure9(System &sys,
                    const std::vector<std::string> &benchmarks = {},
                    const CancelToken *cancel = nullptr);

/** One thermal scenario of Figure 10. */
struct ThermalCase
{
    std::string config;
    std::string app;
    double totalW = 0.0;
    ThermalReport report;
};

/** Everything behind Figure 10(a-f) + the iso-power study. */
struct Fig10Data
{
    // (a-c): worst case over the candidate applications.
    ThermalCase worstPlanar, worstNoTh3d, worstTh3d;
    // Iso-power: 3D at the planar 90 W / 2.66 GHz (4x power density).
    ThermalCase isoPower;
    // (d-f): all three configurations on the same application.
    std::string sameApp;
    ThermalCase samePlanar, sameNoTh3d, sameTh3d;
    /** ROB peak temperature: 3D-TH minus planar (negative = cooler,
     *  the paper reports about -5 K). */
    double robDeltaK = 0.0;
};

/**
 * Run Figure 10. @p candidates are the applications scanned for the
 * worst case (the paper scans all 106 traces; we scan the known
 * extremes plus representatives — defaults cover them).
 */
Fig10Data runFigure10(System &sys,
                      const std::vector<std::string> &candidates = {},
                      const CancelToken *cancel = nullptr);

/** Width prediction / PAM / PVE statistics (Sections 3.5-3.8). */
struct WidthStudyRow
{
    std::string name;
    double accuracy = 0.0;
    double unsafeRate = 0.0;   ///< Unsafe mispredictions / predictions.
    double pamHitRate = 0.0;
    double pveEncodable = 0.0; ///< D-cache values covered by codes 00/01/10.
    double lowWidthFrac = 0.0; ///< Herded fraction of D-cache reads.
    /** Fraction of committed integer results with <= 16 significant
     *  bits (the paper's motivating statistic). */
    double narrowResults = 0.0;
    /** ROB low-width : full-width read ratio (paper: ~5x, Sec. 5.3). */
    double robLowReadRatio = 0.0;
};

struct WidthStudyData
{
    std::vector<WidthStudyRow> rows;
    double overallAccuracy = 0.0;
};

WidthStudyData runWidthStudy(System &sys,
                             const std::vector<std::string> &benchmarks = {},
                             const CancelToken *cancel = nullptr);

/** One configuration's closed-loop DTM outcome. */
struct DtmCase
{
    ConfigKind config = ConfigKind::Base;
    DtmReport report;
};

/** DTM engagement across the thermal-study configurations. */
struct DtmStudyData
{
    std::string benchmark;
    /** Base, 3D-noTH, 3D — presentation order of the thermal study. */
    std::vector<DtmCase> cases;

    /** True when the cases were replayed on the interval fast path.
     *  The error fields below are only meaningful then. */
    bool fast = false;
    /** Exact anchor runs backing the error bounds (0 when !fast). */
    int anchors = 0;
    double maxIpcErr = 0.0;   ///< Max relative effective-IPC error.
    double maxPeakErrK = 0.0; ///< Max |peak temperature delta| (K).
    double maxDutyErrPp = 0.0;///< Max throttle-duty delta (pct points).
};

/**
 * Closed-loop DTM comparison (Section 5.3's motivation made dynamic):
 * the planar baseline, naive 3D, and 3D with Thermal Herding each run
 * under the same policy and trigger. Naive 3D engages the throttle
 * hardest; herding claws most of that back.
 */
DtmStudyData runDtmStudy(System &sys, const std::string &benchmark,
                         const DtmOptions &opts,
                         const CancelToken *cancel = nullptr);

/**
 * runDtmStudy on the interval fast path: each configuration replays
 * its fitted model instead of stepping the cycle-accurate core. One
 * exact anchor (the planar baseline) is also run the slow way and its
 * deltas fill the DtmStudyData error fields, so every fast study
 * reports a measured error bound.
 */
DtmStudyData runDtmStudyFast(System &sys, const std::string &benchmark,
                             const DtmOptions &opts,
                             const IntervalOptions &iopts,
                             const CancelToken *cancel = nullptr);

/** One (core count, config) cell of the neighbor-coupling study. */
struct MulticoreCase
{
    int cores = 0;
    ConfigKind config = ConfigKind::ThreeD;
    MulticoreReport report;
};

/** Everything behind the many-core neighbor-coupling experiment. */
struct MulticoreStudyData
{
    /** Requested mix (cycled over each stack's cores by the runs). */
    std::vector<std::string> mix;
    /** Core counts swept (the N axis). */
    std::vector<int> coreCounts;
    /** Count-major, config-minor: (N₀ noTH), (N₀ TH), (N₁ noTH)... */
    std::vector<MulticoreCase> cases;
};

/**
 * Many-core neighbor-coupling study: each core count in @p core_counts
 * (empty = 1/2/4/8) runs the mixed-benchmark stack twice — 3D without
 * herding and full 3D — so the per-core tables expose how neighbour
 * cores heat each other as the stack fills and how much the per-core
 * DTM ladder claws back. @p base supplies the mix, bank geometry, and
 * DTM knobs; its numCores is overridden by each grid cell.
 */
MulticoreStudyData
runMulticoreStudy(System &sys, const MulticoreConfig &base,
                  const std::vector<int> &core_counts = {},
                  const CancelToken *cancel = nullptr);

/**
 * Knobs of a config-family trigger sweep — the interval fast path's
 * headline workload: many DTM runs of one (benchmark, config-family),
 * differing only in policy and trigger temperature.
 */
struct FamilySweepOptions
{
    /** Configuration family swept (its fitted model is shared by every
     *  fast point). The naive 3D stack default is the interesting one:
     *  it actually trips DTM across the trigger range. */
    ConfigKind config = ConfigKind::ThreeDNoTH;
    /** Per-point DTM knobs; policy and trigger are overwritten by the
     *  sweep grid below. */
    DtmOptions dtm;
    /** Trigger temperatures: triggerSteps points spanning [lo, hi]. */
    double triggerLoK = 352.0;
    double triggerHiK = 368.0;
    int triggerSteps = 51;
    /** Policies swept (cross product with the trigger grid). */
    std::vector<DtmPolicyKind> policies = {
        DtmPolicyKind::ClockGate, DtmPolicyKind::FetchThrottle};
    /**
     * In fast mode, every anchorStride-th trigger step of each policy
     * also runs the exact path; the measured fast-vs-exact deltas feed
     * the sweep's error bound. 0 disables anchoring (no error bound).
     */
    int anchorStride = 16;
    /** Fast path (fit once, replay per point) vs exact per-point core
     *  runs on the same grid. */
    bool fast = true;
    IntervalOptions interval;
};

/** One (policy, trigger) point of a family sweep. */
struct FamilySweepPoint
{
    double triggerK = 0.0;
    DtmPolicyKind policy = DtmPolicyKind::ClockGate;
    /** The sweep-mode result (replayed when fast, exact otherwise). */
    DtmReport report;
    /** True when this fast point was also run exactly. */
    bool anchor = false;
    DtmReport exact; ///< Exact anchor result (valid when anchor).
};

/** Everything behind one family sweep. */
struct FamilySweepData
{
    std::string benchmark;
    ConfigKind config = ConfigKind::Base;
    bool fast = false;
    /** Points in (policy-major, trigger-minor) grid order. */
    std::vector<FamilySweepPoint> points;
    /** Exact anchors run (0 in exact mode or with anchoring off). */
    int anchors = 0;
    double maxIpcErr = 0.0;   ///< Max relative effective-IPC error.
    double maxPeakErrK = 0.0; ///< Max |peak temperature delta| (K).
    double maxDutyErrPp = 0.0;///< Max throttle-duty delta (pct points).
};

/**
 * Sweep a (policy x trigger) DTM grid over one config-family. In fast
 * mode the model is fitted (or fetched) once up front and every point
 * replays it — on a warm store the whole sweep performs zero core
 * simulations; anchor points bound the replay error against the exact
 * engine. In exact mode every point steps the cycle-accurate core (the
 * comparison baseline for the fast path's speedup claim).
 */
FamilySweepData runFamilySweep(System &sys, const std::string &benchmark,
                               const FamilySweepOptions &opts,
                               const CancelToken *cancel = nullptr);

} // namespace th

#endif // TH_SIM_EXPERIMENTS_H
