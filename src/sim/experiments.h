/**
 * @file
 * Paper-experiment harnesses: one entry point per table/figure of the
 * evaluation section. The bench binaries print these; integration
 * tests assert tolerance bands around the anchors in paper_targets.h.
 */

#ifndef TH_SIM_EXPERIMENTS_H
#define TH_SIM_EXPERIMENTS_H

#include <array>
#include <string>
#include <vector>

#include "sim/system.h"
#include "thermal/hotspot.h"

namespace th {

/** Number of Figure 8 configurations. */
inline constexpr int kNumFig8Configs = 5;

/** Per-benchmark Figure 8 results. */
struct Fig8Benchmark
{
    std::string name;
    std::string suite;
    std::array<double, kNumFig8Configs> ipc{};
    std::array<double, kNumFig8Configs> ipns{};
    /** 3D vs Base performance gain (e.g. 0.47 = +47%). */
    double speedup = 0.0;
};

/** Per-suite geometric means (the paper's benchmark classes). */
struct Fig8Group
{
    std::string suite;
    std::array<double, kNumFig8Configs> ipcGeomean{};
    std::array<double, kNumFig8Configs> ipnsGeomean{};
    double speedup = 0.0;
};

/** Everything behind Figure 8(a-c). */
struct Fig8Data
{
    std::vector<Fig8Benchmark> benchmarks;
    std::vector<Fig8Group> groups;
    /** Mean of the per-group means (the paper's M-of-M). */
    std::array<double, kNumFig8Configs> ipcMeanOfMeans{};
    double speedupMeanOfMeans = 0.0;
    std::string minBenchmark, maxBenchmark;
    double minSpeedup = 0.0, maxSpeedup = 0.0;
};

/**
 * Run Figure 8 over @p benchmarks (empty = all registered). All
 * harnesses accept an optional CancelToken, polled by the underlying
 * core runs: a fired token unwinds the sweep with a Cancelled throw
 * (the thread pool rethrows it on the calling thread after draining).
 */
Fig8Data runFigure8(System &sys,
                    const std::vector<std::string> &benchmarks = {},
                    const CancelToken *cancel = nullptr);

/** Power breakdown of one configuration (Figure 9 pie). */
struct PowerBreakdown
{
    std::string config;
    double totalW = 0.0;
    double clockW = 0.0;
    double leakW = 0.0;
    double dynamicW = 0.0;
    /** Per-core-block dynamic watts (both cores combined). */
    std::array<double, kNumCoreBlocks> blockW{};
    double l2W = 0.0;
};

/** Per-application total-power savings (Section 5.2). */
struct PowerSaving
{
    std::string name;
    double baseW = 0.0;
    double th3dW = 0.0;
    /** Fractional saving of the 3D TH design vs planar. */
    double saving = 0.0;
};

/** Everything behind Figure 9(a-c). */
struct Fig9Data
{
    PowerBreakdown planar;     ///< Fig. 9(a): 2D, ~90 W.
    PowerBreakdown noTh3d;     ///< Fig. 9(b): 3D without herding.
    PowerBreakdown th3d;       ///< Fig. 9(c): 3D with Thermal Herding.
    std::vector<PowerSaving> savings;
    PowerSaving minSaving, maxSaving;
};

/**
 * Run Figure 9. The headline breakdowns use the paper's max-power
 * application (mpeg2); @p benchmarks (empty = all) feed the per-app
 * saving range.
 */
Fig9Data runFigure9(System &sys,
                    const std::vector<std::string> &benchmarks = {},
                    const CancelToken *cancel = nullptr);

/** One thermal scenario of Figure 10. */
struct ThermalCase
{
    std::string config;
    std::string app;
    double totalW = 0.0;
    ThermalReport report;
};

/** Everything behind Figure 10(a-f) + the iso-power study. */
struct Fig10Data
{
    // (a-c): worst case over the candidate applications.
    ThermalCase worstPlanar, worstNoTh3d, worstTh3d;
    // Iso-power: 3D at the planar 90 W / 2.66 GHz (4x power density).
    ThermalCase isoPower;
    // (d-f): all three configurations on the same application.
    std::string sameApp;
    ThermalCase samePlanar, sameNoTh3d, sameTh3d;
    /** ROB peak temperature: 3D-TH minus planar (negative = cooler,
     *  the paper reports about -5 K). */
    double robDeltaK = 0.0;
};

/**
 * Run Figure 10. @p candidates are the applications scanned for the
 * worst case (the paper scans all 106 traces; we scan the known
 * extremes plus representatives — defaults cover them).
 */
Fig10Data runFigure10(System &sys,
                      const std::vector<std::string> &candidates = {},
                      const CancelToken *cancel = nullptr);

/** Width prediction / PAM / PVE statistics (Sections 3.5-3.8). */
struct WidthStudyRow
{
    std::string name;
    double accuracy = 0.0;
    double unsafeRate = 0.0;   ///< Unsafe mispredictions / predictions.
    double pamHitRate = 0.0;
    double pveEncodable = 0.0; ///< D-cache values covered by codes 00/01/10.
    double lowWidthFrac = 0.0; ///< Herded fraction of D-cache reads.
    /** Fraction of committed integer results with <= 16 significant
     *  bits (the paper's motivating statistic). */
    double narrowResults = 0.0;
    /** ROB low-width : full-width read ratio (paper: ~5x, Sec. 5.3). */
    double robLowReadRatio = 0.0;
};

struct WidthStudyData
{
    std::vector<WidthStudyRow> rows;
    double overallAccuracy = 0.0;
};

WidthStudyData runWidthStudy(System &sys,
                             const std::vector<std::string> &benchmarks = {},
                             const CancelToken *cancel = nullptr);

/** One configuration's closed-loop DTM outcome. */
struct DtmCase
{
    ConfigKind config = ConfigKind::Base;
    DtmReport report;
};

/** DTM engagement across the thermal-study configurations. */
struct DtmStudyData
{
    std::string benchmark;
    /** Base, 3D-noTH, 3D — presentation order of the thermal study. */
    std::vector<DtmCase> cases;
};

/**
 * Closed-loop DTM comparison (Section 5.3's motivation made dynamic):
 * the planar baseline, naive 3D, and 3D with Thermal Herding each run
 * under the same policy and trigger. Naive 3D engages the throttle
 * hardest; herding claws most of that back.
 */
DtmStudyData runDtmStudy(System &sys, const std::string &benchmark,
                         const DtmOptions &opts,
                         const CancelToken *cancel = nullptr);

} // namespace th

#endif // TH_SIM_EXPERIMENTS_H
