#include "sim/experiments.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/log.h"
#include "common/stats.h"
#include "common/threadpool.h"
#include "trace/suites.h"

namespace th {

namespace {

std::vector<std::string>
defaultBenchmarks(const std::vector<std::string> &requested)
{
    if (!requested.empty())
        return requested;
    std::vector<std::string> names;
    for (const auto &p : allBenchmarks())
        names.push_back(p.name);
    return names;
}

PowerBreakdown
breakdown(const Evaluation &ev)
{
    PowerBreakdown b;
    b.config = configName(ev.config);
    b.totalW = ev.power.totalW();
    b.clockW = ev.power.clockW;
    b.leakW = ev.power.leakW;
    b.dynamicW = ev.power.dynamicW();
    for (int i = 0; i < kNumCoreBlocks; ++i) {
        b.blockW[static_cast<size_t>(i)] =
            ev.power.coreBlocks[static_cast<size_t>(i)].total() *
            ev.power.numCores;
    }
    b.l2W = ev.power.l2.total();
    return b;
}

} // namespace

Fig8Data
runFigure8(System &sys, const std::vector<std::string> &benchmarks,
           const CancelToken *cancel)
{
    const auto names = defaultBenchmarks(benchmarks);
    const auto configs = figure8Configs();

    Fig8Data data;
    data.minSpeedup = 1e9;
    data.maxSpeedup = -1e9;

    std::map<std::string, std::vector<const Fig8Benchmark *>> by_suite;
    data.benchmarks.reserve(names.size());

    // Fan the full (benchmark, config) grid across the pool. Each run
    // owns its trace generator, RNG, and core, so runs are
    // independent; results land at their flat index and the reduction
    // below walks them in the original order, making the output
    // bit-identical to a serial sweep at any thread count.
    const size_t ncfg = configs.size();
    const auto cells = ThreadPool::global().parallelMap(
        names.size() * ncfg, [&](size_t i) {
            const CoreResult r =
                sys.runCore(names[i / ncfg], configs[i % ncfg], cancel);
            return std::pair<double, double>(r.perf.ipc(), r.ipns());
        });

    for (size_t b = 0; b < names.size(); ++b) {
        const auto &name = names[b];
        Fig8Benchmark row;
        row.name = name;
        row.suite = benchmarkByName(name).suite;
        for (size_t c = 0; c < ncfg; ++c) {
            row.ipc[c] = cells[b * ncfg + c].first;
            row.ipns[c] = cells[b * ncfg + c].second;
        }
        row.speedup = row.ipns[4] / row.ipns[0] - 1.0;
        if (row.speedup < data.minSpeedup) {
            data.minSpeedup = row.speedup;
            data.minBenchmark = name;
        }
        if (row.speedup > data.maxSpeedup) {
            data.maxSpeedup = row.speedup;
            data.maxBenchmark = name;
        }
        data.benchmarks.push_back(row);
    }
    for (const auto &row : data.benchmarks)
        by_suite[row.suite].push_back(&row);

    // Per-suite geometric means, in registry order.
    std::vector<double> group_speedups;
    for (const auto &suite : suiteNames()) {
        auto it = by_suite.find(suite);
        if (it == by_suite.end())
            continue;
        Fig8Group g;
        g.suite = suite;
        for (int c = 0; c < kNumFig8Configs; ++c) {
            std::vector<double> ipcs, ipnss;
            for (const Fig8Benchmark *b : it->second) {
                ipcs.push_back(b->ipc[static_cast<size_t>(c)]);
                ipnss.push_back(b->ipns[static_cast<size_t>(c)]);
            }
            g.ipcGeomean[static_cast<size_t>(c)] = geomean(ipcs);
            g.ipnsGeomean[static_cast<size_t>(c)] = geomean(ipnss);
        }
        g.speedup = g.ipnsGeomean[4] / g.ipnsGeomean[0] - 1.0;
        group_speedups.push_back(g.speedup);
        data.groups.push_back(g);
    }

    for (int c = 0; c < kNumFig8Configs; ++c) {
        std::vector<double> means;
        for (const auto &g : data.groups)
            means.push_back(g.ipcGeomean[static_cast<size_t>(c)]);
        data.ipcMeanOfMeans[static_cast<size_t>(c)] = mean(means);
    }
    data.speedupMeanOfMeans = mean(group_speedups);
    return data;
}

Fig9Data
runFigure9(System &sys, const std::vector<std::string> &benchmarks,
           const CancelToken *cancel)
{
    Fig9Data data;

    const std::string ref = System::kPowerReferenceBenchmark;
    data.planar = breakdown(sys.evaluate(ref, ConfigKind::Base, cancel));
    data.noTh3d =
        breakdown(sys.evaluate(ref, ConfigKind::ThreeDNoTH, cancel));
    data.th3d = breakdown(sys.evaluate(ref, ConfigKind::ThreeD, cancel));

    const auto names = defaultBenchmarks(benchmarks);
    data.minSaving.saving = 1e9;
    data.maxSaving.saving = -1e9;
    // Per-application savings in parallel; min/max selection stays a
    // serial in-order scan so ties resolve exactly as before.
    data.savings = ThreadPool::global().parallelMap(
        names.size(), [&](size_t i) {
            PowerSaving s;
            s.name = names[i];
            s.baseW = sys.evaluate(names[i], ConfigKind::Base, cancel)
                          .power.totalW();
            s.th3dW = sys.evaluate(names[i], ConfigKind::ThreeD, cancel)
                          .power.totalW();
            s.saving = 1.0 - s.th3dW / s.baseW;
            return s;
        });
    for (const auto &s : data.savings) {
        if (s.saving < data.minSaving.saving)
            data.minSaving = s;
        if (s.saving > data.maxSaving.saving)
            data.maxSaving = s;
    }
    return data;
}

namespace {

ThermalCase
thermalCase(System &sys, const std::string &app, ConfigKind kind,
            double power_scale = 1.0,
            const CancelToken *cancel = nullptr)
{
    const Evaluation ev = sys.evaluate(app, kind, cancel);
    ThermalCase tc;
    tc.config = configName(kind);
    tc.app = app;
    tc.totalW = ev.power.totalW() * power_scale;
    tc.report = sys.thermal(ev, power_scale);
    return tc;
}

} // namespace

Fig10Data
runFigure10(System &sys, const std::vector<std::string> &candidates,
            const CancelToken *cancel)
{
    std::vector<std::string> apps = candidates;
    if (apps.empty()) {
        // The paper scans all 106 traces; these cover its reported
        // worst cases (mpeg2 planar/3D, yacr2 for Thermal Herding)
        // plus high-activity representatives.
        apps = {"mpeg2enc", "yacr2", "susan", "crafty", "g721"};
    }

    Fig10Data data;

    // All (config, app) thermal cases in one parallel fan-out; each
    // case runs its own core simulation (memoized across figures) and
    // owns its thermal grid. The worst-case selection walks each
    // config's results in app order, exactly like the serial scan.
    const ConfigKind kinds[] = {ConfigKind::Base, ConfigKind::ThreeDNoTH,
                                ConfigKind::ThreeD};
    const size_t napps = apps.size();
    const auto cases = ThreadPool::global().parallelMap(
        3 * napps, [&](size_t i) {
            return thermalCase(sys, apps[i % napps], kinds[i / napps],
                               1.0, cancel);
        });
    auto worstOf = [&](size_t kind_idx) {
        ThermalCase worst;
        for (size_t a = 0; a < napps; ++a) {
            const ThermalCase &tc = cases[kind_idx * napps + a];
            if (tc.report.peakK > worst.report.peakK)
                worst = tc;
        }
        return worst;
    };
    data.worstPlanar = worstOf(0);
    data.worstNoTh3d = worstOf(1);
    data.worstTh3d = worstOf(2);

    // Iso-power: the 3D stack burning the full planar budget at the
    // planar frequency (Section 5.3's 4x-power-density what-if).
    {
        const Evaluation ev = sys.evaluate(
            data.worstPlanar.app, ConfigKind::ThreeDNoTH, cancel);
        const double scale =
            data.worstPlanar.totalW / ev.power.totalW();
        data.isoPower = thermalCase(sys, data.worstPlanar.app,
                                    ConfigKind::ThreeDNoTH, scale,
                                    cancel);
        data.isoPower.config = "3D-isoPower";
    }

    // Same-application comparison (Figure 10 d-f): these cases were
    // already solved during the scan — reuse them instead of running
    // three more thermal analyses.
    data.sameApp = data.worstPlanar.app;
    const size_t same_idx = static_cast<size_t>(
        std::find(apps.begin(), apps.end(), data.sameApp) -
        apps.begin());
    data.samePlanar = cases[0 * napps + same_idx];
    data.sameNoTh3d = cases[1 * napps + same_idx];
    data.sameTh3d = cases[2 * napps + same_idx];

    data.robDeltaK = data.sameTh3d.report.blockPeakK(BlockId::Rob) -
        data.samePlanar.report.blockPeakK(BlockId::Rob);
    return data;
}

namespace {

WidthStudyRow
widthStudyRow(const System &sys, const std::string &name,
              const CancelToken *cancel)
{
    const CoreResult r = sys.runCore(name, ConfigKind::TH, cancel);
    WidthStudyRow row;
    row.name = name;
    row.accuracy = r.perf.widthAccuracy();
    const double preds =
        static_cast<double>(r.perf.widthPredictions.value());
    row.unsafeRate = preds > 0.0
        ? static_cast<double>(r.perf.widthUnsafe.value()) / preds
        : 0.0;
    const double pam =
        static_cast<double>(r.perf.pamHits.value() +
                            r.perf.pamMisses.value());
    row.pamHitRate = pam > 0.0
        ? static_cast<double>(r.perf.pamHits.value()) / pam
        : 0.0;
    const double pve = static_cast<double>(
        r.perf.pveZeros.value() + r.perf.pveOnes.value() +
        r.perf.pveAddr.value() + r.perf.pveExplicit.value());
    row.pveEncodable = pve > 0.0
        ? 1.0 - static_cast<double>(r.perf.pveExplicit.value()) / pve
        : 0.0;
    const double reads = static_cast<double>(
        r.activity.dl1ReadLow.value() +
        r.activity.dl1ReadFull.value());
    row.lowWidthFrac = reads > 0.0
        ? static_cast<double>(r.activity.dl1ReadLow.value()) / reads
        : 0.0;
    // Histogram buckets are 4 bits wide: buckets 0-3 cover results
    // representable in the top die's 16 bits.
    row.narrowResults = r.perf.valueWidthBits.fraction(0) +
        r.perf.valueWidthBits.fraction(1) +
        r.perf.valueWidthBits.fraction(2) +
        r.perf.valueWidthBits.fraction(3);
    const double rob_full =
        static_cast<double>(r.activity.robReadFull.value());
    row.robLowReadRatio = rob_full > 0.0
        ? static_cast<double>(r.activity.robReadLow.value()) /
              rob_full
        : 0.0;
    return row;
}

} // namespace

WidthStudyData
runWidthStudy(System &sys, const std::vector<std::string> &benchmarks,
              const CancelToken *cancel)
{
    const auto names = defaultBenchmarks(benchmarks);
    WidthStudyData data;
    data.rows = ThreadPool::global().parallelMap(
        names.size(),
        [&](size_t i) { return widthStudyRow(sys, names[i], cancel); });
    double acc_sum = 0.0;
    for (const auto &row : data.rows)
        acc_sum += row.accuracy;
    data.overallAccuracy = data.rows.empty()
        ? 0.0 : acc_sum / static_cast<double>(data.rows.size());
    return data;
}

DtmStudyData
runDtmStudy(System &sys, const std::string &benchmark,
            const DtmOptions &opts, const CancelToken *cancel)
{
    const ConfigKind kinds[] = {ConfigKind::Base, ConfigKind::ThreeDNoTH,
                                ConfigKind::ThreeD};
    DtmStudyData data;
    data.benchmark = benchmark;
    // Each DTM run owns its core, thermal grid, and stepper; only the
    // calibrated power model is shared (read-only after calibration),
    // so the three configurations fan out safely.
    data.cases = ThreadPool::global().parallelMap(3, [&](size_t i) {
        DtmCase c;
        c.config = kinds[i];
        c.report = sys.runDtm(benchmark, kinds[i], opts, cancel);
        return c;
    });
    return data;
}

namespace {

/** Fold one fast-vs-exact report pair into running error maxima. */
void
accumulateAnchorError(const DtmReport &fast, const DtmReport &exact,
                      double &ipc_err, double &peak_err_k,
                      double &duty_err_pp)
{
    const double denom = std::max(exact.ipcEffective, 1e-12);
    ipc_err = std::max(
        ipc_err,
        std::fabs(fast.ipcEffective - exact.ipcEffective) / denom);
    peak_err_k =
        std::max(peak_err_k, std::fabs(fast.peakK - exact.peakK));
    duty_err_pp = std::max(
        duty_err_pp,
        std::fabs(fast.throttleDuty - exact.throttleDuty) * 100.0);
}

} // namespace

DtmStudyData
runDtmStudyFast(System &sys, const std::string &benchmark,
                const DtmOptions &opts, const IntervalOptions &iopts,
                const CancelToken *cancel)
{
    const ConfigKind kinds[] = {ConfigKind::Base, ConfigKind::ThreeDNoTH,
                                ConfigKind::ThreeD};
    DtmStudyData data;
    data.benchmark = benchmark;
    data.fast = true;
    data.cases = ThreadPool::global().parallelMap(3, [&](size_t i) {
        DtmCase c;
        c.config = kinds[i];
        c.report =
            sys.runIntervalDtm(benchmark, kinds[i], opts, iopts, cancel);
        return c;
    });
    // One exact anchor bounds the replay error. The planar baseline is
    // the cheapest of the three (and, via runDtm's memoization, often a
    // cache or store hit from an earlier exact study).
    const DtmReport exact =
        sys.runDtm(benchmark, ConfigKind::Base, opts, cancel);
    data.anchors = 1;
    accumulateAnchorError(data.cases[0].report, exact, data.maxIpcErr,
                          data.maxPeakErrK, data.maxDutyErrPp);
    return data;
}

FamilySweepData
runFamilySweep(System &sys, const std::string &benchmark,
               const FamilySweepOptions &opts, const CancelToken *cancel)
{
    if (opts.triggerSteps < 1)
        fatal("family sweep needs at least one trigger step");
    if (opts.policies.empty())
        fatal("family sweep needs at least one policy");

    FamilySweepData data;
    data.benchmark = benchmark;
    data.config = opts.config;
    data.fast = opts.fast;

    // Fit (or fetch) the family's model once before fanning out: every
    // replayed point below reuses it through System's interval cache,
    // so the fan-out itself performs zero fitting runs.
    if (opts.fast)
        sys.runIntervalFit(benchmark, opts.config, opts.interval,
                           cancel);

    // (policy, trigger) grid in one parallel fan-out; results land at
    // their flat index, so the output order is independent of thread
    // count — same determinism argument as the figure sweeps.
    const size_t nsteps = static_cast<size_t>(opts.triggerSteps);
    data.points = ThreadPool::global().parallelMap(
        opts.policies.size() * nsteps, [&](size_t i) {
            const size_t step = i % nsteps;
            FamilySweepPoint pt;
            pt.policy = opts.policies[i / nsteps];
            pt.triggerK = opts.triggerSteps == 1
                ? opts.triggerLoK
                : opts.triggerLoK +
                    static_cast<double>(step) *
                        (opts.triggerHiK - opts.triggerLoK) /
                        static_cast<double>(opts.triggerSteps - 1);
            DtmOptions d = opts.dtm;
            d.policy = pt.policy;
            d.triggers.triggerK = pt.triggerK;
            pt.report = opts.fast
                ? sys.runIntervalDtm(benchmark, opts.config, d,
                                     opts.interval, cancel)
                : sys.runDtm(benchmark, opts.config, d, cancel);
            pt.anchor = opts.fast && opts.anchorStride > 0 &&
                step % static_cast<size_t>(opts.anchorStride) == 0;
            if (pt.anchor)
                pt.exact = sys.runDtm(benchmark, opts.config, d, cancel);
            return pt;
        });

    for (const auto &pt : data.points) {
        if (!pt.anchor)
            continue;
        ++data.anchors;
        accumulateAnchorError(pt.report, pt.exact, data.maxIpcErr,
                              data.maxPeakErrK, data.maxDutyErrPp);
    }
    return data;
}

MulticoreStudyData
runMulticoreStudy(System &sys, const MulticoreConfig &base,
                  const std::vector<int> &core_counts,
                  const CancelToken *cancel)
{
    MulticoreStudyData data;
    data.mix = base.benchmarks;
    data.coreCounts = core_counts.empty() ? std::vector<int>{1, 2, 4, 8}
                                          : core_counts;
    const ConfigKind kinds[] = {ConfigKind::ThreeDNoTH,
                                ConfigKind::ThreeD};
    // Each cell owns its cores, floorplan, grid, and stepper; like
    // runDtmStudy, only the calibrated power model is shared, so the
    // whole grid fans out (cells reduce in grid order).
    data.cases = ThreadPool::global().parallelMap(
        data.coreCounts.size() * 2, [&](size_t i) {
            MulticoreCase c;
            c.cores = data.coreCounts[i / 2];
            c.config = kinds[i % 2];
            MulticoreConfig mc = base;
            mc.numCores = c.cores;
            c.report = sys.runMulticore(c.config, mc, cancel);
            return c;
        });
    return data;
}

} // namespace th
