/**
 * @file
 * Top-level facade: wires the circuit library, trace generator, core
 * model, power model, floorplans, and thermal model into one object —
 * the library's main entry point for running paper-style experiments.
 *
 * Thread model: runCore(), evaluate(), thermal(), and power() are safe
 * to call concurrently from the experiment thread pool. Each run owns
 * its trace generator, RNG, and core, so runs are independent; the
 * shared state is the lazily-calibrated power model (guarded by a
 * std::once_flag) and the memoizing CoreResult cache (mutex-guarded).
 */

#ifndef TH_SIM_SYSTEM_H
#define TH_SIM_SYSTEM_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "circuit/blocks.h"
#include "common/cancel.h"
#include "common/thread_annotations.h"
#include "core/pipeline.h"
#include "floorplan/floorplan.h"
#include "power/power_model.h"
#include "sim/configs.h"
#include "store/artifact_store.h"
#include "thermal/hotspot.h"
#include "trace/generator.h"

namespace th {

/** Simulation window sizes and persistence options. */
struct SimOptions
{
    std::uint64_t instructions = 200000;
    std::uint64_t warmupInstructions = 100000;

    /**
     * Directory of the persistent CoreResult store. Empty (the
     * default) falls back to the TH_STORE_DIR environment variable;
     * when that is unset too, the store is disabled and only the
     * in-memory cache memoizes runs.
     */
    std::string storeDir;
    /** LRU size cap of the store (0 = unlimited). */
    std::uint64_t storeMaxBytes = 256ULL << 20;
};

/** Combined results of one (benchmark, configuration) evaluation. */
struct Evaluation
{
    std::string benchmark;
    ConfigKind config = ConfigKind::Base;
    CoreResult core;
    PowerResult power;
};

/**
 * The Thermal Herding evaluation system. Construct once; it owns the
 * circuit library and the power calibration (against the dual-core
 * mpeg2 planar baseline, Section 5.2).
 */
class System
{
  public:
    explicit System(const SimOptions &opts = SimOptions{});

    /**
     * Run a benchmark's trace on a configuration (IPC only). @p cancel,
     * when non-null, is polled by the cycle loop: a fired token aborts
     * the run with a Cancelled throw and nothing partial is cached.
     */
    CoreResult runCore(const std::string &benchmark, ConfigKind kind,
                       const CancelToken *cancel = nullptr) const;

    /** Run a benchmark's trace on an explicit core configuration. */
    CoreResult runCore(const std::string &benchmark,
                       const CoreConfig &cfg,
                       const CancelToken *cancel = nullptr) const;

    /**
     * Run an arbitrary trace source (e.g. a replayed .thtrace file)
     * through a fresh core, using this system's simulation window.
     * Uncached: external traces have no registry-backed cache key.
     */
    CoreResult runTrace(TraceSource &trace, const CoreConfig &cfg) const;

    /** Run and compute power (calibrates lazily on first use). */
    Evaluation evaluate(const std::string &benchmark, ConfigKind kind,
                        const CancelToken *cancel = nullptr);

    /**
     * Closed-loop DTM run: couples the core, power model, and transient
     * thermal solver in fixed intervals under a throttling policy (see
     * dtm/engine.h). Results are memoized in memory and, when a store
     * is configured, persisted under dtmConfigHash(cfg, opts). The
     * persistent lookup happens *before* power calibration, so a warm
     * rerun of a DTM sweep performs zero core simulations.
     */
    DtmReport runDtm(const std::string &benchmark, ConfigKind kind,
                     const DtmOptions &dtm_opts,
                     const CancelToken *cancel = nullptr);

    /**
     * Fetch (or fit) the interval model of (benchmark, @p kind's
     * config-family): memory cache -> store (intervalModelKey) -> one
     * cycle-accurate fitting run, persisted when a store is configured.
     * The expensive entry point of the fast path; everything replayed
     * afterwards reuses the returned model.
     */
    IntervalModel runIntervalFit(const std::string &benchmark,
                                 ConfigKind kind,
                                 const IntervalOptions &iopts,
                                 const CancelToken *cancel = nullptr);

    /**
     * Many-core stack run: N cycle cores with private L1s and per-core
     * trace streams over a banked shared L2 and a generated floorplan,
     * per-core DTM on top (see multicore/multicore.h). The per-core
     * mix comes from @p mc.benchmarks cycled over the cores (empty =
     * kPowerReferenceBenchmark everywhere). Results are memoized in
     * memory and, when a store is configured, persisted under
     * multicoreConfigHash with the resolved mix joined by '+' as the
     * benchmark key; like runDtm, the persistent lookup happens before
     * power calibration so a warm rerun performs zero simulations.
     */
    MulticoreReport runMulticore(ConfigKind kind,
                                 const MulticoreConfig &mc,
                                 const CancelToken *cancel = nullptr);

    /**
     * Closed-loop DTM run on the interval fast path: replays the
     * fitted model of (benchmark, config-family) through the DtmEngine
     * instead of stepping the cycle-accurate core — 100-1000x faster,
     * approximate (callers report error bounds against exact anchors;
     * see runFamilySweep in sim/experiments.h). Replayed reports are
     * cheap and approximate, so they are neither memoized nor
     * persisted; only the fitted model is.
     */
    DtmReport runIntervalDtm(const std::string &benchmark,
                             ConfigKind kind, const DtmOptions &dtm_opts,
                             const IntervalOptions &iopts,
                             const CancelToken *cancel = nullptr);

    /** Thermal analysis of an evaluation. */
    ThermalReport thermal(const Evaluation &eval,
                          double power_scale = 1.0) const;

    /** Hit/miss counters of the memoizing CoreResult cache. */
    struct CacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    /**
     * Cache accounting. Figures sharing a (benchmark, config) pair —
     * Fig 8/9/10 all re-run Base and 3D — simulate it only once.
     */
    CacheStats coreCacheStats() const;

    /** Drop all memoized CoreResults and reset the counters. */
    void clearCoreCache();

    /**
     * Counters of the persistent artifact store (all zero when no
     * store directory is configured). On a warm run of a figure sweep
     * every simulation the cold run performed is served as a store
     * hit instead.
     */
    StoreStats storeStats() const;

    /** True when a persistent store directory is configured. */
    bool storeEnabled() const;

    /** The store directory ("" when disabled). */
    std::string storeDir() const;

    const BlockLibrary &circuits() const { return lib_; }
    PowerModel &power();
    const HotspotModel &hotspot() const { return hotspot_; }
    const SimOptions &options() const { return opts_; }
    const Floorplan &planarFloorplan() const { return planar_fp_; }
    const Floorplan &stackedFloorplan() const { return stacked_fp_; }

    /** The benchmark the paper calibrates power against. */
    static constexpr const char *kPowerReferenceBenchmark = "mpeg2enc";

  private:
    void ensureCalibrated(const CancelToken *cancel = nullptr) const;
    /** The uncached simulation path behind the memoizing cache. */
    CoreResult simulate(const std::string &benchmark,
                        const CoreConfig &cfg,
                        const CancelToken *cancel) const;

    SimOptions opts_;
    BlockLibrary lib_;
    mutable PowerModel power_;
    HotspotModel hotspot_;
    Floorplan planar_fp_;
    Floorplan stacked_fp_;
    // th_lint: guards(power_ — calibrated exactly once before first read)
    mutable std::once_flag calibrate_once_;

    mutable Mutex cache_mu_;
    mutable std::unordered_map<std::string, CoreResult> // th_lint: excluded(lookup-only cache; never iterated)
        core_cache_ TH_GUARDED_BY(cache_mu_);
    mutable Mutex dtm_mu_;
    mutable std::unordered_map<std::string, DtmReport> // th_lint: excluded(lookup-only cache; never iterated)
        dtm_cache_ TH_GUARDED_BY(dtm_mu_);
    mutable Mutex interval_mu_;
    mutable std::unordered_map<std::string, IntervalModel> // th_lint: excluded(lookup-only cache; never iterated)
        interval_cache_ TH_GUARDED_BY(interval_mu_);
    mutable Mutex multicore_mu_;
    mutable std::unordered_map<std::string, MulticoreReport> // th_lint: excluded(lookup-only cache; never iterated)
        multicore_cache_ TH_GUARDED_BY(multicore_mu_);
    mutable std::atomic<std::uint64_t> cache_hits_{0};
    mutable std::atomic<std::uint64_t> cache_misses_{0};

    /** Disk-backed CoreResult store; null when disabled. */
    mutable std::unique_ptr<ArtifactStore> store_;
};

} // namespace th

#endif // TH_SIM_SYSTEM_H
