/**
 * @file
 * Top-level facade: wires the circuit library, trace generator, core
 * model, power model, floorplans, and thermal model into one object —
 * the library's main entry point for running paper-style experiments.
 */

#ifndef TH_SIM_SYSTEM_H
#define TH_SIM_SYSTEM_H

#include <memory>
#include <string>

#include "circuit/blocks.h"
#include "core/pipeline.h"
#include "floorplan/floorplan.h"
#include "power/power_model.h"
#include "sim/configs.h"
#include "thermal/hotspot.h"
#include "trace/generator.h"

namespace th {

/** Simulation window sizes. */
struct SimOptions
{
    std::uint64_t instructions = 200000;
    std::uint64_t warmupInstructions = 100000;
};

/** Combined results of one (benchmark, configuration) evaluation. */
struct Evaluation
{
    std::string benchmark;
    ConfigKind config = ConfigKind::Base;
    CoreResult core;
    PowerResult power;
};

/**
 * The Thermal Herding evaluation system. Construct once; it owns the
 * circuit library and the power calibration (against the dual-core
 * mpeg2 planar baseline, Section 5.2).
 */
class System
{
  public:
    explicit System(const SimOptions &opts = SimOptions{});

    /** Run a benchmark's trace on a configuration (IPC only). */
    CoreResult runCore(const std::string &benchmark,
                       ConfigKind kind) const;

    /** Run a benchmark's trace on an explicit core configuration. */
    CoreResult runCore(const std::string &benchmark,
                       const CoreConfig &cfg) const;

    /** Run and compute power (calibrates lazily on first use). */
    Evaluation evaluate(const std::string &benchmark, ConfigKind kind);

    /** Thermal analysis of an evaluation. */
    ThermalReport thermal(const Evaluation &eval,
                          double power_scale = 1.0) const;

    const BlockLibrary &circuits() const { return lib_; }
    PowerModel &power();
    const HotspotModel &hotspot() const { return hotspot_; }
    const SimOptions &options() const { return opts_; }
    const Floorplan &planarFloorplan() const { return planar_fp_; }
    const Floorplan &stackedFloorplan() const { return stacked_fp_; }

    /** The benchmark the paper calibrates power against. */
    static constexpr const char *kPowerReferenceBenchmark = "mpeg2enc";

  private:
    void ensureCalibrated();

    SimOptions opts_;
    BlockLibrary lib_;
    PowerModel power_;
    HotspotModel hotspot_;
    Floorplan planar_fp_;
    Floorplan stacked_fp_;
    bool calibrated_ = false;
};

} // namespace th

#endif // TH_SIM_SYSTEM_H
