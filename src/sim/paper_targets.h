/**
 * @file
 * The published anchors this reproduction is validated against.
 * EXPERIMENTS.md records the measured counterparts; the integration
 * tests assert tolerance bands around the load-bearing ones.
 */

#ifndef TH_SIM_PAPER_TARGETS_H
#define TH_SIM_PAPER_TARGETS_H

namespace th {
namespace paper {

// --- Clock frequency (Section 5.1.1, Table 2). ---
inline constexpr double kFreq2dGhz = 2.66;
inline constexpr double kFreq3dGhz = 3.93;
inline constexpr double kFreqGain = 1.479;
inline constexpr double kWakeupSelectImprovement = 0.32;
inline constexpr double kAluBypassImprovement = 0.36;

// --- Performance (Section 5.1.2, Figure 8). ---
inline constexpr double kMeanSpeedup = 0.470;
inline constexpr double kMinSpeedup = 0.07;  // mcf
inline constexpr double kMaxSpeedup = 0.77;  // patricia
inline constexpr double kCraftySpeedup = 0.65;
inline constexpr double kSpecFpSpeedup = 0.295;
inline constexpr double kNonFpGroupSpeedupLo = 0.494;
inline constexpr double kNonFpGroupSpeedupHi = 0.515;

// --- Width prediction (Section 3.8). ---
inline constexpr double kWidthAccuracy = 0.97;

// --- Power (Section 5.2, Figure 9; dual-core mpeg2). ---
inline constexpr double kBaselinePowerW = 90.0;
inline constexpr double k3dNoThPowerW = 72.7;
inline constexpr double k3dThPowerW = 64.3;
inline constexpr double kMinPowerSaving = 0.15; // yacr2
inline constexpr double kMaxPowerSaving = 0.30; // susan
inline constexpr double kClockPowerFrac = 0.35;
inline constexpr double kLeakagePowerFrac = 0.20;

// --- Thermals (Section 5.3, Figure 10). ---
inline constexpr double kPeak2dK = 360.0;      // scheduler hotspot
inline constexpr double kPeak3dNoThK = 377.0;  // +17 K
inline constexpr double kPeak3dThK = 372.0;    // +12 K, D-cache (yacr2)
inline constexpr double kPeakIsoPowerK = 418.0; // 90 W @ 2.66 GHz in 3D
inline constexpr double kRobCoolingK = 5.0;    // ROB cooler than planar

} // namespace paper
} // namespace th

#endif // TH_SIM_PAPER_TARGETS_H
