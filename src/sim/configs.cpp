#include "sim/configs.h"

#include "common/log.h"

namespace th {

const char *
configName(ConfigKind kind)
{
    switch (kind) {
      case ConfigKind::Base:       return "Base";
      case ConfigKind::TH:         return "TH";
      case ConfigKind::Pipe:       return "Pipe";
      case ConfigKind::Fast:       return "Fast";
      case ConfigKind::ThreeD:     return "3D";
      case ConfigKind::ThreeDNoTH: return "3D-noTH";
      default:                     return "Unknown";
    }
}

std::vector<ConfigKind>
figure8Configs()
{
    return {ConfigKind::Base, ConfigKind::TH, ConfigKind::Pipe,
            ConfigKind::Fast, ConfigKind::ThreeD};
}

CoreConfig
makeConfig(ConfigKind kind, const BlockLibrary &lib)
{
    CoreConfig cfg;
    cfg.name = configName(kind);
    switch (kind) {
      case ConfigKind::Base:
        cfg.freqGhz = lib.frequency2dGhz();
        break;
      case ConfigKind::TH:
        cfg.freqGhz = lib.frequency2dGhz();
        cfg.thermalHerding = true;
        break;
      case ConfigKind::Pipe:
        cfg.freqGhz = lib.frequency2dGhz();
        cfg.pipeOpts = true;
        break;
      case ConfigKind::Fast:
        cfg.freqGhz = lib.frequency3dGhz();
        break;
      case ConfigKind::ThreeD:
        cfg.freqGhz = lib.frequency3dGhz();
        cfg.thermalHerding = true;
        cfg.pipeOpts = true;
        cfg.stacked = true;
        break;
      case ConfigKind::ThreeDNoTH:
        cfg.freqGhz = lib.frequency3dGhz();
        cfg.pipeOpts = true;
        cfg.stacked = true;
        break;
    }
    return cfg;
}

} // namespace th
