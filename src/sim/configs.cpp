#include "sim/configs.h"

#include <cstring>

#include "common/log.h"
#include "io/serialize.h"

namespace th {

namespace {

/** FNV-1a accumulator. */
struct Hasher
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void bytes(const void *p, std::size_t len)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < len; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ULL;
        }
    }
    void add(std::uint64_t v) { bytes(&v, sizeof(v)); }
    void add(int v) { add(static_cast<std::uint64_t>(v)); }
    void add(bool v) { add(static_cast<std::uint64_t>(v)); }
    void add(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        add(bits);
    }
};

} // namespace

const char *
configName(ConfigKind kind)
{
    switch (kind) {
      case ConfigKind::Base:       return "Base";
      case ConfigKind::TH:         return "TH";
      case ConfigKind::Pipe:       return "Pipe";
      case ConfigKind::Fast:       return "Fast";
      case ConfigKind::ThreeD:     return "3D";
      case ConfigKind::ThreeDNoTH: return "3D-noTH";
      default:                     return "Unknown";
    }
}

std::vector<ConfigKind>
figure8Configs()
{
    return {ConfigKind::Base, ConfigKind::TH, ConfigKind::Pipe,
            ConfigKind::Fast, ConfigKind::ThreeD};
}

CoreConfig
makeConfig(ConfigKind kind, const BlockLibrary &lib)
{
    CoreConfig cfg;
    cfg.name = configName(kind);
    switch (kind) {
      case ConfigKind::Base:
        cfg.freqGhz = lib.frequency2dGhz();
        break;
      case ConfigKind::TH:
        cfg.freqGhz = lib.frequency2dGhz();
        cfg.thermalHerding = true;
        break;
      case ConfigKind::Pipe:
        cfg.freqGhz = lib.frequency2dGhz();
        cfg.pipeOpts = true;
        break;
      case ConfigKind::Fast:
        cfg.freqGhz = lib.frequency3dGhz();
        break;
      case ConfigKind::ThreeD:
        cfg.freqGhz = lib.frequency3dGhz();
        cfg.thermalHerding = true;
        cfg.pipeOpts = true;
        cfg.stacked = true;
        break;
      case ConfigKind::ThreeDNoTH:
        cfg.freqGhz = lib.frequency3dGhz();
        cfg.pipeOpts = true;
        cfg.stacked = true;
        break;
    }
    return cfg;
}

std::uint64_t
configHash(const CoreConfig &cfg)
{
    Hasher h;
    // The display name is deliberately excluded: it never affects the
    // simulation, and ablation variants share the base name.
    h.add(cfg.fetchWidth);
    h.add(cfg.decodeWidth);
    h.add(cfg.commitWidth);
    h.add(cfg.issueWidth);
    h.add(cfg.ifqSize);
    h.add(cfg.robSize);
    h.add(cfg.rsSize);
    h.add(cfg.lqSize);
    h.add(cfg.sqSize);
    h.add(cfg.numIntAlu);
    h.add(cfg.numIntShift);
    h.add(cfg.numIntMult);
    h.add(cfg.numFpAdd);
    h.add(cfg.numFpMult);
    h.add(cfg.numFpDiv);
    h.add(cfg.numLoadPorts);
    h.add(cfg.numStorePorts);
    h.add(cfg.il1Bytes);
    h.add(cfg.il1Assoc);
    h.add(cfg.il1LineBytes);
    h.add(cfg.dl1Bytes);
    h.add(cfg.dl1Assoc);
    h.add(cfg.dl1LineBytes);
    h.add(cfg.l2Bytes);
    h.add(cfg.l2Assoc);
    h.add(cfg.l2LineBytes);
    h.add(cfg.il1Cycles);
    h.add(cfg.dl1Cycles);
    h.add(cfg.itlbEntries);
    h.add(cfg.itlbAssoc);
    h.add(cfg.dtlbEntries);
    h.add(cfg.dtlbAssoc);
    h.add(cfg.tlbMissCycles);
    h.add(cfg.bimodalEntries);
    h.add(cfg.localHistEntries);
    h.add(cfg.localHistBits);
    h.add(cfg.localCounterEntries);
    h.add(cfg.globalHistBits);
    h.add(cfg.chooserEntries);
    h.add(cfg.btbEntries);
    h.add(cfg.btbAssoc);
    h.add(cfg.ibtbEntries);
    h.add(cfg.ibtbAssoc);
    h.add(cfg.freqGhz);
    h.add(cfg.memLatencyNs);
    h.add(cfg.maxOutstandingMisses);
    h.add(cfg.frontendDepth);
    h.add(cfg.thermalHerding);
    h.add(cfg.pipeOpts);
    h.add(cfg.stacked);
    h.add(static_cast<int>(cfg.schedAlloc));
    h.add(cfg.pamEnabled);
    h.add(cfg.pveEnabled);
    h.add(cfg.btbMemoEnabled);
    h.add(cfg.widthPredEntries);
    h.add(static_cast<int>(cfg.widthPredKind));
    return h.h;
}

std::uint64_t
dtmConfigHash(const CoreConfig &cfg, const DtmOptions &opts)
{
    Hasher h;
    h.add(configHash(cfg));
    h.add(static_cast<std::uint64_t>(kDtmReportSchemaVersion));
    h.add(opts.intervalCycles);
    h.add(opts.maxIntervals);
    h.add(opts.warmupInstructions);
    h.add(static_cast<int>(opts.policy));
    h.add(opts.triggers.triggerK);
    h.add(opts.triggers.hysteresisK);
    h.add(opts.timeDilation);
    h.add(opts.gridN);
    h.add(opts.maxDtS);
    h.add(static_cast<int>(opts.solver));
    return h.h;
}

std::uint64_t
intervalFamilyHash(const CoreConfig &cfg)
{
    // configHash's field list minus the replay-retargeted axes:
    // freqGhz, stacked, fetchWidth, decodeWidth, issueWidth,
    // commitWidth. Keep the two lists in sync when CoreConfig grows.
    Hasher h;
    h.add(cfg.ifqSize);
    h.add(cfg.robSize);
    h.add(cfg.rsSize);
    h.add(cfg.lqSize);
    h.add(cfg.sqSize);
    h.add(cfg.numIntAlu);
    h.add(cfg.numIntShift);
    h.add(cfg.numIntMult);
    h.add(cfg.numFpAdd);
    h.add(cfg.numFpMult);
    h.add(cfg.numFpDiv);
    h.add(cfg.numLoadPorts);
    h.add(cfg.numStorePorts);
    h.add(cfg.il1Bytes);
    h.add(cfg.il1Assoc);
    h.add(cfg.il1LineBytes);
    h.add(cfg.dl1Bytes);
    h.add(cfg.dl1Assoc);
    h.add(cfg.dl1LineBytes);
    h.add(cfg.l2Bytes);
    h.add(cfg.l2Assoc);
    h.add(cfg.l2LineBytes);
    h.add(cfg.il1Cycles);
    h.add(cfg.dl1Cycles);
    h.add(cfg.itlbEntries);
    h.add(cfg.itlbAssoc);
    h.add(cfg.dtlbEntries);
    h.add(cfg.dtlbAssoc);
    h.add(cfg.tlbMissCycles);
    h.add(cfg.bimodalEntries);
    h.add(cfg.localHistEntries);
    h.add(cfg.localHistBits);
    h.add(cfg.localCounterEntries);
    h.add(cfg.globalHistBits);
    h.add(cfg.chooserEntries);
    h.add(cfg.btbEntries);
    h.add(cfg.btbAssoc);
    h.add(cfg.ibtbEntries);
    h.add(cfg.ibtbAssoc);
    h.add(cfg.memLatencyNs);
    h.add(cfg.maxOutstandingMisses);
    h.add(cfg.frontendDepth);
    h.add(cfg.thermalHerding);
    h.add(cfg.pipeOpts);
    h.add(static_cast<int>(cfg.schedAlloc));
    h.add(cfg.pamEnabled);
    h.add(cfg.pveEnabled);
    h.add(cfg.btbMemoEnabled);
    h.add(cfg.widthPredEntries);
    h.add(static_cast<int>(cfg.widthPredKind));
    return h.h;
}

std::uint64_t
intervalModelKey(const CoreConfig &cfg, const IntervalOptions &opts)
{
    Hasher h;
    h.add(intervalFamilyHash(cfg));
    h.add(static_cast<std::uint64_t>(kIntervalModelSchemaVersion));
    h.add(opts.fitIntervalCycles);
    h.add(opts.fitCycles);
    h.add(opts.phaseIpcTolerance);
    h.add(opts.warmupInstructions);
    h.add(opts.throttleFitCycles);
    return h.h;
}

std::uint64_t
multicoreConfigHash(const CoreConfig &cfg, const MulticoreConfig &mc)
{
    Hasher h;
    h.add(configHash(cfg));
    h.add(static_cast<std::uint64_t>(kMulticoreReportSchemaVersion));
    h.add(mc.numCores);
    h.add(mc.l2Banks);
    h.add(mc.l2BankServiceCycles);
    h.add(mc.l2MshrPerCore);
    // The per-core mix shapes every stream: fold names and order.
    h.add(static_cast<std::uint64_t>(mc.benchmarks.size()));
    for (const std::string &b : mc.benchmarks) {
        h.add(static_cast<std::uint64_t>(b.size()));
        h.bytes(b.data(), b.size());
    }
    // Embedded per-core DTM knobs: same set dtmConfigHash folds.
    h.add(mc.dtm.intervalCycles);
    h.add(mc.dtm.maxIntervals);
    h.add(mc.dtm.warmupInstructions);
    h.add(static_cast<int>(mc.dtm.policy));
    h.add(mc.dtm.triggers.triggerK);
    h.add(mc.dtm.triggers.hysteresisK);
    h.add(mc.dtm.timeDilation);
    h.add(mc.dtm.gridN);
    h.add(mc.dtm.maxDtS);
    h.add(static_cast<int>(mc.dtm.solver));
    return h.h;
}

} // namespace th
