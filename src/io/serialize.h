/**
 * @file
 * Binary codec for simulation result types (CoreResult and the stats
 * structs inside it). Field order is part of the on-disk schema: any
 * change to the encoded field set — including adding a Counter to
 * PerfStats/ActivityStats — must bump kCoreResultSchemaVersion, which
 * invalidates every persisted artifact (see store/artifact_store.h).
 */

#ifndef TH_IO_SERIALIZE_H
#define TH_IO_SERIALIZE_H

#include <cstdint>
#include <vector>

#include "core/pipeline.h"
#include "dtm/engine.h"
#include "interval/model.h"
#include "io/chunkio.h"
#include "io/request.h"
#include "multicore/multicore.h"

namespace th {

/** Schema version of the CoreResult encoding below. */
inline constexpr std::uint32_t kCoreResultSchemaVersion = 1;

/** Schema version of the DtmReport encoding below. */
inline constexpr std::uint32_t kDtmReportSchemaVersion = 1;

/** Schema version of the IntervalModel encoding below. */
inline constexpr std::uint32_t kIntervalModelSchemaVersion = 1;

/** Schema version of the MulticoreReport encoding below. */
inline constexpr std::uint32_t kMulticoreReportSchemaVersion = 1;

/** Append @p h to @p enc (range, moments, and bucket counts). */
void encodeHistogram(Encoder &enc, const Histogram &h);

/** Decode into @p h; false on malformed state (decoder flagged too). */
bool decodeHistogram(Decoder &dec, Histogram &h);

/** Append every PerfStats field in schema order. */
void encodePerfStats(Encoder &enc, const PerfStats &perf);
bool decodePerfStats(Decoder &dec, PerfStats &perf);

/** Append every ActivityStats counter in schema order. */
void encodeActivityStats(Encoder &enc, const ActivityStats &act);
bool decodeActivityStats(Decoder &dec, ActivityStats &act);

/** Append a full CoreResult. */
void encodeCoreResult(Encoder &enc, const CoreResult &result);
bool decodeCoreResult(Decoder &dec, CoreResult &result);

/**
 * Canonical byte representation of a CoreResult — two results are
 * bit-identical iff these vectors compare equal (used by round-trip
 * tests and the store's integrity checks).
 */
std::vector<std::uint8_t> serializeCoreResult(const CoreResult &result);

/** Append a full DtmReport (header fields then interval samples). */
void encodeDtmReport(Encoder &enc, const DtmReport &rep);
bool decodeDtmReport(Decoder &dec, DtmReport &rep);

/** Canonical byte representation of a DtmReport (round-trip tests,
 *  store integrity checks) — mirrors serializeCoreResult(). */
std::vector<std::uint8_t> serializeDtmReport(const DtmReport &rep);

/** Append a full IntervalModel (header fields then phases). */
void encodeIntervalModel(Encoder &enc, const IntervalModel &m);
bool decodeIntervalModel(Decoder &dec, IntervalModel &m);

/** Canonical byte representation of an IntervalModel (round-trip
 *  tests, store integrity checks) — mirrors serializeCoreResult(). */
std::vector<std::uint8_t> serializeIntervalModel(const IntervalModel &m);

/** Append a full MulticoreReport (header, per-core rows, bank rows). */
void encodeMulticoreReport(Encoder &enc, const MulticoreReport &rep);
bool decodeMulticoreReport(Decoder &dec, MulticoreReport &rep);

/** Canonical byte representation of a MulticoreReport (round-trip
 *  tests, store integrity checks) — mirrors serializeCoreResult(). */
std::vector<std::uint8_t>
serializeMulticoreReport(const MulticoreReport &rep);

/** Append every SimRequest field in wire-schema order. */
void encodeSimRequest(Encoder &enc, const SimRequest &req);
bool decodeSimRequest(Decoder &dec, SimRequest &req);

/** Append every SimResponse field in wire-schema order. */
void encodeSimResponse(Encoder &enc, const SimResponse &rsp);
bool decodeSimResponse(Decoder &dec, SimResponse &rsp);

/**
 * Canonical byte representation of a SimRequest with the deadline
 * zeroed — the single-flight identity: two requests coalesce onto one
 * simulation iff these vectors compare equal.
 */
std::vector<std::uint8_t> flightKeyOf(const SimRequest &req);

} // namespace th

#endif // TH_IO_SERIALIZE_H
