#include "io/trace_file.h"

#include <algorithm>
#include <cstdio>

#include "common/log.h"

namespace th {

namespace {

/** Records per RECS chunk: bounds memory while keeping chunks few. */
constexpr std::uint64_t kRecordsPerChunk = 8192;

std::string
describe(const std::string &path, const std::string &what)
{
    return strformat("%s: %s", path.c_str(), what.c_str());
}

bool
parseMeta(const std::vector<std::uint8_t> &payload, TraceFileInfo &info)
{
    Decoder d(payload);
    info.benchmark = d.str();
    info.suite = d.str();
    info.seed = d.u64();
    return d.ok() && d.atEnd();
}

bool
parsePrefill(const std::vector<std::uint8_t> &payload,
             std::vector<PrefillLine> &lines)
{
    Decoder d(payload);
    const std::uint32_t n = d.u32();
    if (!d.ok())
        return false;
    lines.reserve(lines.size() + n);
    for (std::uint32_t i = 0; i < n; ++i) {
        PrefillLine line;
        line.addr = d.u64();
        line.intoL1 = d.u8() != 0;
        lines.push_back(line);
    }
    return d.ok() && d.atEnd();
}

bool
parseRecords(const std::vector<std::uint8_t> &payload,
             std::vector<TraceRecord> *out, std::uint64_t &count)
{
    Decoder d(payload);
    const std::uint32_t n = d.u32();
    if (!d.ok())
        return false;
    if (out)
        out->reserve(out->size() + n);
    for (std::uint32_t i = 0; i < n; ++i) {
        TraceRecord rec;
        if (!decodeTraceRecord(d, rec))
            return false;
        if (out)
            out->push_back(rec);
    }
    count += n;
    return d.atEnd();
}

/**
 * Shared walk over a trace file: fills @p info and, when non-null,
 * @p records / @p prefill. All chunks are CRC-validated either way.
 */
bool
loadTraceFile(const std::string &path, TraceFileInfo &info,
              std::vector<TraceRecord> *records,
              std::vector<PrefillLine> *prefill, std::string *err)
{
    std::string reason;
    ChunkFileReader reader;
    if (!reader.open(path, kTraceFormatTag, info.schemaVersion, reason)) {
        if (err)
            *err = describe(path, reason);
        return false;
    }
    if (info.schemaVersion != kTraceSchemaVersion) {
        if (err)
            *err = describe(path,
                            strformat("unsupported trace schema %u "
                                      "(this build reads %u)",
                                      info.schemaVersion,
                                      kTraceSchemaVersion));
        return false;
    }

    bool saw_meta = false;
    std::string tag;
    std::vector<std::uint8_t> payload;
    for (;;) {
        const ChunkReader::Next what = reader.next(tag, payload, reason);
        if (what == ChunkReader::Next::End)
            break;
        if (what == ChunkReader::Next::Corrupt) {
            if (err)
                *err = describe(path, reason);
            return false;
        }
        bool ok = true;
        if (tag == "META") {
            ok = parseMeta(payload, info);
            saw_meta = ok;
        } else if (tag == "PRFL") {
            std::vector<PrefillLine> local;
            ok = parsePrefill(payload, local);
            if (ok) {
                info.numPrefillLines += local.size();
                if (prefill)
                    prefill->insert(prefill->end(), local.begin(),
                                    local.end());
            }
        } else if (tag == "RECS") {
            ok = parseRecords(payload, records, info.numRecords);
        }
        // Unknown tags are skipped: forward-compatible extensions.
        if (!ok) {
            if (err)
                *err = describe(path, strformat("malformed '%s' chunk",
                                                tag.c_str()));
            return false;
        }
    }
    if (!saw_meta) {
        if (err)
            *err = describe(path, "missing META chunk");
        return false;
    }
    return true;
}

} // namespace

void
encodeTraceRecord(Encoder &enc, const TraceRecord &rec)
{
    enc.u64(rec.pc);
    enc.u8(static_cast<std::uint8_t>(rec.op));
    enc.u8(static_cast<std::uint8_t>(rec.numSrcs));
    for (int i = 0; i < kMaxSrcs; ++i)
        enc.u16(rec.srcRegs[i]);
    enc.u8(rec.hasDst ? 1 : 0);
    enc.u16(rec.dstReg);
    enc.u64(rec.resultValue);
    for (int i = 0; i < kMaxSrcs; ++i)
        enc.u64(rec.srcValues[i]);
    enc.u64(rec.effAddr);
    enc.u8(rec.memSize);
    enc.u8(rec.taken ? 1 : 0);
    enc.u64(rec.target);
}

bool
decodeTraceRecord(Decoder &dec, TraceRecord &rec)
{
    rec.pc = dec.u64();
    const std::uint8_t op = dec.u8();
    const std::uint8_t num_srcs = dec.u8();
    for (int i = 0; i < kMaxSrcs; ++i)
        rec.srcRegs[i] = dec.u16();
    rec.hasDst = dec.u8() != 0;
    rec.dstReg = dec.u16();
    rec.resultValue = dec.u64();
    for (int i = 0; i < kMaxSrcs; ++i)
        rec.srcValues[i] = dec.u64();
    rec.effAddr = dec.u64();
    rec.memSize = dec.u8();
    rec.taken = dec.u8() != 0;
    rec.target = dec.u64();
    if (!dec.ok() ||
        op >= static_cast<std::uint8_t>(OpClass::NumOpClasses) ||
        num_srcs > kMaxSrcs)
        return false;
    rec.op = static_cast<OpClass>(op);
    rec.numSrcs = num_srcs;
    return true;
}

bool
recordTrace(const std::string &path, TraceSource &src,
            std::uint64_t max_records, const std::string &benchmark,
            const std::string &suite, std::uint64_t seed,
            std::string *err)
{
    ChunkFileWriter writer;
    if (!writer.open(path, kTraceFormatTag, kTraceSchemaVersion)) {
        if (err)
            *err = describe(path, "cannot open for writing");
        return false;
    }

    Encoder meta;
    meta.str(benchmark);
    meta.str(suite);
    meta.u64(seed);
    writer.chunk("META", meta);

    std::vector<PrefillLine> prefill;
    src.prefillLines(prefill);
    Encoder prfl;
    prfl.u32(static_cast<std::uint32_t>(prefill.size()));
    for (const PrefillLine &line : prefill) {
        prfl.u64(line.addr);
        prfl.u8(line.intoL1 ? 1 : 0);
    }
    writer.chunk("PRFL", prfl);

    std::uint64_t written = 0;
    while (written < max_records) {
        const std::uint64_t block =
            std::min(kRecordsPerChunk, max_records - written);
        Encoder recs;
        recs.u32(0); // Patched below once the block count is known.
        std::uint32_t n = 0;
        TraceRecord rec;
        for (; n < block && src.next(rec); ++n)
            encodeTraceRecord(recs, rec);
        if (n == 0)
            break; // Source exhausted on a block boundary.
        recs.patchU32(0, n);
        writer.chunk("RECS", recs);
        written += n;
        if (n < block)
            break; // Source exhausted mid-block.
    }

    if (!writer.close()) {
        if (err)
            *err = describe(path, "write failure");
        std::remove(path.c_str());
        return false;
    }
    return true;
}

bool
readTraceInfo(const std::string &path, TraceFileInfo &info,
              std::string *err)
{
    info = TraceFileInfo{};
    return loadTraceFile(path, info, nullptr, nullptr, err);
}

bool
TraceFileReplay::open(const std::string &path, std::string *err)
{
    info_ = TraceFileInfo{};
    records_.clear();
    prefill_.clear();
    pos_ = 0;
    return loadTraceFile(path, info_, &records_, &prefill_, err);
}

bool
TraceFileReplay::next(TraceRecord &rec)
{
    if (pos_ >= records_.size())
        return false;
    rec = records_[pos_++];
    return true;
}

void
TraceFileReplay::reset()
{
    pos_ = 0;
}

void
TraceFileReplay::prefillLines(std::vector<PrefillLine> &lines) const
{
    lines.insert(lines.end(), prefill_.begin(), prefill_.end());
}

} // namespace th
