/**
 * @file
 * Versioned chunked binary container — the serialization substrate for
 * every on-disk artifact this library produces (.thtrace trace files,
 * artifact-store CoreResults).
 *
 * Container layout (all integers little-endian):
 *
 *     [4B "THIO"][4B format tag][u32 container version][u32 schema version]
 *     then zero or more chunks:
 *     [4B chunk tag][u32 payload length][u32 CRC-32 of payload][payload]
 *
 * The format tag names the artifact kind ("TRCE", "CRES", ...); the
 * schema version belongs to that format and readers reject files whose
 * version they do not understand. Every chunk payload is CRC-checked
 * on read, so truncation and bit corruption are detected rather than
 * deserialized. Writers and readers run over an abstract byte
 * sink/source with FILE* and in-memory implementations.
 */

#ifndef TH_IO_CHUNKIO_H
#define TH_IO_CHUNKIO_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace th {

/** Current layout version of the container itself (not the payload). */
inline constexpr std::uint32_t kContainerVersion = 1;

/**
 * Default per-chunk payload cap. Generous for on-disk artifacts; a
 * network server lowers it (ChunkReader::setMaxChunkBytes) so a
 * hostile frame cannot make the reader allocate gigabytes on the
 * strength of a four-byte length field.
 */
inline constexpr std::uint32_t kDefaultMaxChunkBytes = 1u << 30;

/** Why the last ChunkReader operation failed (explicit error codes). */
enum class ChunkError {
    None,              ///< No failure recorded.
    ShortHeader,       ///< Container header truncated.
    BadMagic,          ///< Not a THIO container.
    FormatMismatch,    ///< Container is a different artifact kind.
    BadVersion,        ///< Unsupported container layout version.
    TruncatedHeader,   ///< Chunk header truncated.
    Oversize,          ///< Declared payload exceeds the configured cap.
    EmptyChunk,        ///< Zero-length payload (no THIO format writes one).
    TruncatedPayload,  ///< Payload shorter than its declared length.
    CrcMismatch,       ///< Payload CRC-32 check failed.
    NotOpen,           ///< File reader used before/after open().
};

/** Human-readable name of a ChunkError ("oversize", "crc-mismatch", ...). */
const char *chunkErrorName(ChunkError e);

// ---------------------------------------------------------------------
// Byte sinks and sources.
// ---------------------------------------------------------------------

/** Destination for serialized bytes. */
class ByteSink
{
  public:
    virtual ~ByteSink() = default;
    /** Append @p len bytes; false on I/O failure. */
    virtual bool write(const void *data, std::size_t len) = 0;
};

/** ByteSink over an open FILE* (not owned). */
class FileSink : public ByteSink
{
  public:
    explicit FileSink(std::FILE *f = nullptr) : f_(f) {}
    void setFile(std::FILE *f) { f_ = f; }
    bool write(const void *data, std::size_t len) override;

  private:
    std::FILE *f_;
};

/** ByteSink into a growable memory buffer. */
class MemSink : public ByteSink
{
  public:
    bool write(const void *data, std::size_t len) override;
    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::vector<std::uint8_t> &data() { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Origin of serialized bytes. */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;
    /** Read up to @p len bytes; returns the count actually read. */
    virtual std::size_t read(void *data, std::size_t len) = 0;
    /** Rewind to the first byte; false if the source cannot seek. */
    virtual bool rewind() = 0;
};

/** ByteSource over an open FILE* (not owned). */
class FileSource : public ByteSource
{
  public:
    explicit FileSource(std::FILE *f = nullptr) : f_(f) {}
    void setFile(std::FILE *f) { f_ = f; }
    std::size_t read(void *data, std::size_t len) override;
    bool rewind() override;

  private:
    std::FILE *f_;
};

/** ByteSource over a caller-owned memory buffer. */
class MemSource : public ByteSource
{
  public:
    MemSource(const void *data, std::size_t len)
        : p_(static_cast<const std::uint8_t *>(data)), len_(len)
    {
    }
    explicit MemSource(const std::vector<std::uint8_t> &buf)
        : MemSource(buf.data(), buf.size())
    {
    }
    std::size_t read(void *data, std::size_t len) override;
    bool rewind() override;

  private:
    const std::uint8_t *p_;
    std::size_t len_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Primitive encoding.
// ---------------------------------------------------------------------

/** Appends little-endian primitives to a chunk payload. */
class Encoder
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** IEEE-754 bit pattern; round-trips exactly. */
    void f64(double v);
    /** u32 length prefix + raw bytes. */
    void str(const std::string &s);
    void bytes(const void *data, std::size_t len);

    /**
     * Overwrite a previously encoded u32 at byte @p offset — for
     * counts known only after the elements are streamed out.
     */
    void patchU32(std::size_t offset, std::uint32_t v);

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::size_t size() const { return buf_.size(); }
    void clear() { buf_.clear(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked reader for a chunk payload. A read past the end sets
 * the failure flag and returns zero values; callers check ok() once
 * after decoding instead of after every field.
 */
class Decoder
{
  public:
    Decoder(const void *data, std::size_t len)
        : p_(static_cast<const std::uint8_t *>(data)), len_(len)
    {
    }
    explicit Decoder(const std::vector<std::uint8_t> &buf)
        : Decoder(buf.data(), buf.size())
    {
    }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    /** True while every read so far stayed in bounds. */
    bool ok() const { return ok_; }
    /** True when the payload has been fully consumed. */
    bool atEnd() const { return pos_ == len_; }
    std::size_t remaining() const { return len_ - pos_; }

  private:
    bool take(void *out, std::size_t n);

    const std::uint8_t *p_;
    std::size_t len_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

// ---------------------------------------------------------------------
// Chunk-level writer / reader.
// ---------------------------------------------------------------------

/** Writes the container header then CRC-framed chunks into a sink. */
class ChunkWriter
{
  public:
    explicit ChunkWriter(ByteSink &sink) : sink_(sink) {}

    /**
     * Emit the container header. @p format_tag is exactly four
     * characters naming the artifact kind; @p schema_version is that
     * format's payload schema.
     */
    bool begin(const char *format_tag, std::uint32_t schema_version);

    /** Append one chunk; false once any write has failed. */
    bool chunk(const char *tag, const Encoder &payload);

    /** True while every write has succeeded. */
    bool ok() const { return ok_; }

  private:
    ByteSink &sink_;
    bool ok_ = true;
};

/** Reads a container written by ChunkWriter, validating CRCs. */
class ChunkReader
{
  public:
    explicit ChunkReader(ByteSource &src) : src_(src) {}

    /**
     * Lower (or raise) the per-chunk payload cap. A declared length
     * above the cap is rejected (ChunkError::Oversize) before any
     * allocation happens — the defense against hostile length fields.
     * Clamped to >= 1.
     */
    void setMaxChunkBytes(std::uint32_t cap)
    {
        max_chunk_bytes_ = cap == 0 ? 1 : cap;
    }
    std::uint32_t maxChunkBytes() const { return max_chunk_bytes_; }

    /**
     * Parse and validate the container header.
     * @param expect_format  Required four-character format tag.
     * @param schema_version Out: the file's schema version (the caller
     *                       decides which versions it supports).
     * @param err            Out: human-readable reason on failure.
     */
    bool readHeader(const char *expect_format,
                    std::uint32_t &schema_version, std::string &err);

    enum class Next {
        Chunk,  ///< A chunk was read and its CRC verified.
        End,    ///< Clean end of container.
        Corrupt ///< Truncated, oversize, empty, or CRC-mismatched.
    };

    /**
     * Read the next chunk into @p tag / @p payload. Zero-length chunks
     * are rejected (ChunkError::EmptyChunk): no THIO format writes one,
     * so an empty record can only be garbage or an attack frame.
     */
    Next next(std::string &tag, std::vector<std::uint8_t> &payload,
              std::string &err);

    /** Code of the most recent failure (None after a success). */
    ChunkError lastError() const { return last_error_; }

  private:
    ByteSource &src_;
    std::uint32_t max_chunk_bytes_ = kDefaultMaxChunkBytes;
    ChunkError last_error_ = ChunkError::None;
};

// ---------------------------------------------------------------------
// FILE-backed convenience wrappers.
// ---------------------------------------------------------------------

/** ChunkWriter over a file it opens and owns. */
class ChunkFileWriter
{
  public:
    ChunkFileWriter() = default;
    ~ChunkFileWriter();
    ChunkFileWriter(const ChunkFileWriter &) = delete;
    ChunkFileWriter &operator=(const ChunkFileWriter &) = delete;

    /** Create/truncate @p path and write the container header. */
    bool open(const std::string &path, const char *format_tag,
              std::uint32_t schema_version);
    bool chunk(const char *tag, const Encoder &payload);
    /** Flush and close; false if any write (or the flush) failed. */
    bool close();

  private:
    std::FILE *f_ = nullptr;
    FileSink sink_;
    ChunkWriter writer_{sink_};
};

/** ChunkReader over a file it opens and owns. */
class ChunkFileReader
{
  public:
    ChunkFileReader() = default;
    ~ChunkFileReader();
    ChunkFileReader(const ChunkFileReader &) = delete;
    ChunkFileReader &operator=(const ChunkFileReader &) = delete;

    /** Open @p path and validate the container header. */
    bool open(const std::string &path, const char *expect_format,
              std::uint32_t &schema_version, std::string &err);
    ChunkReader::Next next(std::string &tag,
                           std::vector<std::uint8_t> &payload,
                           std::string &err);
    void close();

    /** See ChunkReader::setMaxChunkBytes. */
    void setMaxChunkBytes(std::uint32_t cap)
    {
        reader_.setMaxChunkBytes(cap);
    }
    /** Code of the most recent failure. */
    ChunkError lastError() const { return last_error_; }

  private:
    std::FILE *f_ = nullptr;
    FileSource src_;
    ChunkReader reader_{src_};
    ChunkError last_error_ = ChunkError::None;
};

} // namespace th

#endif // TH_IO_CHUNKIO_H
