/**
 * @file
 * Wire-level request/response records of the th_serve protocol. These
 * are the typed payloads carried inside SREQ/SRSP chunks of a "TSRV"
 * THIO stream (see net/protocol.h for framing and the handshake).
 *
 * Field order is part of the wire schema: any change to the encoded
 * field set must bump kWireSchemaVersion, which makes handshakes
 * between mismatched builds fail loudly instead of desynchronizing
 * mid-stream. The codecs live in io/serialize.cpp next to the artifact
 * codecs so th_lint's serializer-coverage rule audits them the same
 * way.
 */

#ifndef TH_IO_REQUEST_H
#define TH_IO_REQUEST_H

#include <cstdint>
#include <string>
#include <vector>

namespace th {

/** Schema version of the SimRequest/SimResponse encodings.
 *  v2: SimRequest grew dtmSolver. v3: SimRequest grew fastPath.
 *  v4: SimStatus grew Unavailable (cluster mode: shard down).
 *  v5: SimRequestKind grew Multicore; SimRequest grew
 *      mcCores/mcL2Banks (many-core stacks; benchmarks doubles as the
 *      per-core mix). */
inline constexpr std::uint32_t kWireSchemaVersion = 5;

/** What the client is asking the server to do. */
enum class SimRequestKind : std::uint8_t {
    Ping = 0,    ///< Round-trip check; response text echoes build info.
    Fig8 = 1,    ///< Figure 8 performance sweep.
    Fig9 = 2,    ///< Figure 9 power sweep.
    Fig10 = 3,   ///< Figure 10 thermal study.
    Width = 4,   ///< Width-prediction study.
    Dtm = 5,     ///< Closed-loop DTM comparison.
    Core = 6,    ///< Single (benchmark, config) core run.
    Metrics = 7, ///< Plain-text server metrics snapshot.
    Multicore = 8, ///< Many-core stack run (N cores, mixed benchmarks).
};

/** Name of a request kind ("fig8", "metrics", ...). */
const char *simRequestKindName(SimRequestKind k);

/** Outcome class of a response. */
enum class SimStatus : std::uint8_t {
    Ok = 0,
    BadRequest = 1,       ///< Malformed or semantically invalid request.
    Overloaded = 2,       ///< Admission queue full; retry later.
    DeadlineExceeded = 3, ///< Deadline elapsed before completion.
    ShuttingDown = 4,     ///< Server is draining; no new work admitted.
    Internal = 5,         ///< Unexpected server-side failure.
    Unavailable = 6,      ///< Cluster mode: the shard owning this key is
                          ///< down (reconnect backoff in progress).
};

/** Name of a status ("ok", "overloaded", ...). */
const char *simStatusName(SimStatus s);

/**
 * One request. Simulation-window fields (insts/warmup) must match the
 * server's own SimOptions — artifact-store keys do not include them,
 * so the server rejects mismatches rather than serve a cached result
 * computed under a different window.
 */
struct SimRequest
{
    SimRequestKind kind = SimRequestKind::Ping;

    /** Benchmarks to sweep (empty = experiment default set). */
    std::vector<std::string> benchmarks;
    /** Configuration display name, for Core runs ("Base", "3D", ...). */
    std::string config;

    /** Simulation window; must equal the server's (0 = server's). */
    std::uint64_t insts = 0;
    std::uint64_t warmup = 0;

    /**
     * Per-request deadline in milliseconds (0 = none). Not part of the
     * single-flight identity: two requests differing only in deadline
     * coalesce onto the same simulation.
     */
    std::uint32_t deadlineMs = 0;

    // DTM knobs, meaningful for kind == Dtm (0 / empty = defaults).
    std::string dtmPolicy;
    double dtmTriggerK = 0.0;
    std::uint32_t dtmIntervals = 0;
    std::uint64_t dtmIntervalCycles = 0;
    double dtmDilation = 0.0;
    std::uint32_t dtmGridN = 0;
    /** Steady-state solver, solverKindName() ("" = server default). */
    std::string dtmSolver;

    /**
     * Interval fast path (1 = replay fitted models instead of stepping
     * the cycle-accurate core; kind == Dtm only). Part of the
     * single-flight identity, so fast and exact runs of the same study
     * never coalesce.
     */
    std::uint8_t fastPath = 0;

    // Many-core knobs, meaningful for kind == Multicore (0 =
    // defaults). The per-core benchmark mix rides in @c benchmarks
    // (cycled over the cores).
    /** Core count of the stack (kind == Multicore only). */
    std::uint32_t mcCores = 0;
    /** Shared-L2 bank count (kind == Multicore only). */
    std::uint32_t mcL2Banks = 0;
};

/** One response; @p text is the same report a local th_run prints. */
struct SimResponse
{
    SimStatus status = SimStatus::Ok;
    /** Human-readable failure reason ("" on Ok). */
    std::string error;
    /** Rendered report text (byte-identical to the local renderer). */
    std::string text;
};

} // namespace th

#endif // TH_IO_REQUEST_H
