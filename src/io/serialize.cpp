#include "io/serialize.h"

namespace th {

namespace {

/** Histogram bucket-count sanity bound for decode. */
constexpr std::uint32_t kMaxBuckets = 1u << 16;

void
encodeCounter(Encoder &enc, const Counter &c)
{
    enc.u64(c.value());
}

bool
decodeCounter(Decoder &dec, Counter &c)
{
    c.set(dec.u64());
    return dec.ok();
}

} // namespace

void
encodeHistogram(Encoder &enc, const Histogram &h)
{
    enc.f64(h.lo());
    enc.f64(h.hi());
    enc.u32(static_cast<std::uint32_t>(h.buckets().size()));
    enc.u64(h.count());
    enc.f64(h.sum());
    enc.f64(h.min());
    enc.f64(h.max());
    for (std::uint64_t b : h.buckets())
        enc.u64(b);
}

bool
decodeHistogram(Decoder &dec, Histogram &h)
{
    const double lo = dec.f64();
    const double hi = dec.f64();
    const std::uint32_t nbuckets = dec.u32();
    const std::uint64_t count = dec.u64();
    const double sum = dec.f64();
    const double min = dec.f64();
    const double max = dec.f64();
    if (!dec.ok() || nbuckets == 0 || nbuckets > kMaxBuckets)
        return false;
    std::vector<std::uint64_t> buckets(nbuckets);
    for (std::uint32_t i = 0; i < nbuckets; ++i)
        buckets[i] = dec.u64();
    if (!dec.ok())
        return false;
    return h.restore(lo, hi, std::move(buckets), count, sum, min, max);
}

void
encodePerfStats(Encoder &enc, const PerfStats &perf)
{
    encodeCounter(enc, perf.cycles);
    encodeCounter(enc, perf.committedInsts);
    encodeCounter(enc, perf.fetchedInsts);
    encodeHistogram(enc, perf.valueWidthBits);
    encodeCounter(enc, perf.branches);
    encodeCounter(enc, perf.branchMispredicts);
    encodeCounter(enc, perf.btbMisses);
    encodeCounter(enc, perf.btbTargetStalls);
    encodeCounter(enc, perf.widthPredictions);
    encodeCounter(enc, perf.widthPredCorrect);
    encodeCounter(enc, perf.widthUnsafe);
    encodeCounter(enc, perf.widthSafeMiss);
    encodeCounter(enc, perf.rfGroupStalls);
    encodeCounter(enc, perf.execInputStalls);
    encodeCounter(enc, perf.execReplays);
    encodeCounter(enc, perf.dcacheWidthStalls);
    encodeCounter(enc, perf.loads);
    encodeCounter(enc, perf.stores);
    encodeCounter(enc, perf.storeForwards);
    encodeCounter(enc, perf.dl1Misses);
    encodeCounter(enc, perf.il1Misses);
    encodeCounter(enc, perf.l2Misses);
    encodeCounter(enc, perf.itlbMisses);
    encodeCounter(enc, perf.dtlbMisses);
    encodeCounter(enc, perf.pamHits);
    encodeCounter(enc, perf.pamMisses);
    encodeCounter(enc, perf.pveZeros);
    encodeCounter(enc, perf.pveOnes);
    encodeCounter(enc, perf.pveAddr);
    encodeCounter(enc, perf.pveExplicit);
}

bool
decodePerfStats(Decoder &dec, PerfStats &perf)
{
    decodeCounter(dec, perf.cycles);
    decodeCounter(dec, perf.committedInsts);
    decodeCounter(dec, perf.fetchedInsts);
    if (!decodeHistogram(dec, perf.valueWidthBits))
        return false;
    decodeCounter(dec, perf.branches);
    decodeCounter(dec, perf.branchMispredicts);
    decodeCounter(dec, perf.btbMisses);
    decodeCounter(dec, perf.btbTargetStalls);
    decodeCounter(dec, perf.widthPredictions);
    decodeCounter(dec, perf.widthPredCorrect);
    decodeCounter(dec, perf.widthUnsafe);
    decodeCounter(dec, perf.widthSafeMiss);
    decodeCounter(dec, perf.rfGroupStalls);
    decodeCounter(dec, perf.execInputStalls);
    decodeCounter(dec, perf.execReplays);
    decodeCounter(dec, perf.dcacheWidthStalls);
    decodeCounter(dec, perf.loads);
    decodeCounter(dec, perf.stores);
    decodeCounter(dec, perf.storeForwards);
    decodeCounter(dec, perf.dl1Misses);
    decodeCounter(dec, perf.il1Misses);
    decodeCounter(dec, perf.l2Misses);
    decodeCounter(dec, perf.itlbMisses);
    decodeCounter(dec, perf.dtlbMisses);
    decodeCounter(dec, perf.pamHits);
    decodeCounter(dec, perf.pamMisses);
    decodeCounter(dec, perf.pveZeros);
    decodeCounter(dec, perf.pveOnes);
    decodeCounter(dec, perf.pveAddr);
    decodeCounter(dec, perf.pveExplicit);
    return dec.ok();
}

void
encodeActivityStats(Encoder &enc, const ActivityStats &act)
{
    encodeCounter(enc, act.rfReadLow);
    encodeCounter(enc, act.rfReadFull);
    encodeCounter(enc, act.rfWriteLow);
    encodeCounter(enc, act.rfWriteFull);
    encodeCounter(enc, act.aluLow);
    encodeCounter(enc, act.aluFull);
    encodeCounter(enc, act.shiftLow);
    encodeCounter(enc, act.shiftFull);
    encodeCounter(enc, act.multLow);
    encodeCounter(enc, act.multFull);
    encodeCounter(enc, act.fpOps);
    encodeCounter(enc, act.bypassLow);
    encodeCounter(enc, act.bypassFull);
    for (int d = 0; d < kNumDies; ++d)
        encodeCounter(enc, act.schedWakeupDie[d]);
    encodeCounter(enc, act.schedSelect);
    encodeCounter(enc, act.schedAlloc);
    for (int d = 0; d < kNumDies; ++d)
        encodeCounter(enc, act.schedAllocDie[d]);
    encodeCounter(enc, act.lsqSearchLow);
    encodeCounter(enc, act.lsqSearchFull);
    encodeCounter(enc, act.lsqWrite);
    encodeCounter(enc, act.dl1ReadLow);
    encodeCounter(enc, act.dl1ReadFull);
    encodeCounter(enc, act.dl1WriteLow);
    encodeCounter(enc, act.dl1WriteFull);
    encodeCounter(enc, act.dl1Fill);
    encodeCounter(enc, act.il1Access);
    encodeCounter(enc, act.itlbAccess);
    encodeCounter(enc, act.dtlbAccess);
    encodeCounter(enc, act.btbLow);
    encodeCounter(enc, act.btbFull);
    encodeCounter(enc, act.bpredLookup);
    encodeCounter(enc, act.bpredUpdate);
    encodeCounter(enc, act.decodeUops);
    encodeCounter(enc, act.renameUops);
    encodeCounter(enc, act.robReadLow);
    encodeCounter(enc, act.robReadFull);
    encodeCounter(enc, act.robWriteLow);
    encodeCounter(enc, act.robWriteFull);
    encodeCounter(enc, act.l2Access);
    encodeCounter(enc, act.miscUops);
}

bool
decodeActivityStats(Decoder &dec, ActivityStats &act)
{
    decodeCounter(dec, act.rfReadLow);
    decodeCounter(dec, act.rfReadFull);
    decodeCounter(dec, act.rfWriteLow);
    decodeCounter(dec, act.rfWriteFull);
    decodeCounter(dec, act.aluLow);
    decodeCounter(dec, act.aluFull);
    decodeCounter(dec, act.shiftLow);
    decodeCounter(dec, act.shiftFull);
    decodeCounter(dec, act.multLow);
    decodeCounter(dec, act.multFull);
    decodeCounter(dec, act.fpOps);
    decodeCounter(dec, act.bypassLow);
    decodeCounter(dec, act.bypassFull);
    for (int d = 0; d < kNumDies; ++d)
        decodeCounter(dec, act.schedWakeupDie[d]);
    decodeCounter(dec, act.schedSelect);
    decodeCounter(dec, act.schedAlloc);
    for (int d = 0; d < kNumDies; ++d)
        decodeCounter(dec, act.schedAllocDie[d]);
    decodeCounter(dec, act.lsqSearchLow);
    decodeCounter(dec, act.lsqSearchFull);
    decodeCounter(dec, act.lsqWrite);
    decodeCounter(dec, act.dl1ReadLow);
    decodeCounter(dec, act.dl1ReadFull);
    decodeCounter(dec, act.dl1WriteLow);
    decodeCounter(dec, act.dl1WriteFull);
    decodeCounter(dec, act.dl1Fill);
    decodeCounter(dec, act.il1Access);
    decodeCounter(dec, act.itlbAccess);
    decodeCounter(dec, act.dtlbAccess);
    decodeCounter(dec, act.btbLow);
    decodeCounter(dec, act.btbFull);
    decodeCounter(dec, act.bpredLookup);
    decodeCounter(dec, act.bpredUpdate);
    decodeCounter(dec, act.decodeUops);
    decodeCounter(dec, act.renameUops);
    decodeCounter(dec, act.robReadLow);
    decodeCounter(dec, act.robReadFull);
    decodeCounter(dec, act.robWriteLow);
    decodeCounter(dec, act.robWriteFull);
    decodeCounter(dec, act.l2Access);
    decodeCounter(dec, act.miscUops);
    return dec.ok();
}

void
encodeCoreResult(Encoder &enc, const CoreResult &result)
{
    encodePerfStats(enc, result.perf);
    encodeActivityStats(enc, result.activity);
    enc.f64(result.freqGhz);
}

bool
decodeCoreResult(Decoder &dec, CoreResult &result)
{
    if (!decodePerfStats(dec, result.perf))
        return false;
    if (!decodeActivityStats(dec, result.activity))
        return false;
    result.freqGhz = dec.f64();
    return dec.ok();
}

std::vector<std::uint8_t>
serializeCoreResult(const CoreResult &result)
{
    Encoder enc;
    encodeCoreResult(enc, result);
    return enc.data();
}

void
encodeDtmReport(Encoder &enc, const DtmReport &rep)
{
    enc.str(rep.benchmark);
    enc.str(rep.config);
    enc.str(rep.policy);
    enc.f64(rep.triggerK);
    enc.f64(rep.freqGhz);
    enc.f64(rep.startPeakK);
    enc.f64(rep.peakK);
    enc.f64(rep.finalPeakK);
    enc.f64(rep.totalTimeS);
    enc.f64(rep.timeAboveTriggerS);
    enc.f64(rep.throttleDuty);
    enc.f64(rep.perfLost);
    enc.f64(rep.ipcFree);
    enc.f64(rep.ipcEffective);
    enc.u64(rep.wallCycles);
    enc.u64(rep.committed);
    enc.u32(static_cast<std::uint32_t>(rep.intervals.size()));
    for (const DtmIntervalSample &s : rep.intervals) {
        enc.f64(s.timeS);
        enc.f64(s.peakK);
        enc.f64(s.clockDuty);
        enc.u32(static_cast<std::uint32_t>(s.fetchOn));
        enc.u32(static_cast<std::uint32_t>(s.fetchPeriod));
        enc.u64(s.cycles);
        enc.u64(s.committed);
        enc.f64(s.powerW);
        enc.u8(s.throttled ? 1 : 0);
    }
}

bool
decodeDtmReport(Decoder &dec, DtmReport &rep)
{
    rep.benchmark = dec.str();
    rep.config = dec.str();
    rep.policy = dec.str();
    rep.triggerK = dec.f64();
    rep.freqGhz = dec.f64();
    rep.startPeakK = dec.f64();
    rep.peakK = dec.f64();
    rep.finalPeakK = dec.f64();
    rep.totalTimeS = dec.f64();
    rep.timeAboveTriggerS = dec.f64();
    rep.throttleDuty = dec.f64();
    rep.perfLost = dec.f64();
    rep.ipcFree = dec.f64();
    rep.ipcEffective = dec.f64();
    rep.wallCycles = dec.u64();
    rep.committed = dec.u64();
    const std::uint32_t n = dec.u32();
    // An interval sample is >= 57 payload bytes, so a sane count can
    // never exceed the remaining payload; this rejects corrupt counts
    // before the resize instead of allocating gigabytes.
    if (!dec.ok() || n > dec.remaining())
        return false;
    rep.intervals.assign(n, DtmIntervalSample{});
    for (std::uint32_t i = 0; i < n; ++i) {
        DtmIntervalSample &s = rep.intervals[i];
        s.timeS = dec.f64();
        s.peakK = dec.f64();
        s.clockDuty = dec.f64();
        s.fetchOn = static_cast<int>(dec.u32());
        s.fetchPeriod = static_cast<int>(dec.u32());
        s.cycles = dec.u64();
        s.committed = dec.u64();
        s.powerW = dec.f64();
        s.throttled = dec.u8() != 0;
    }
    return dec.ok();
}

std::vector<std::uint8_t>
serializeDtmReport(const DtmReport &rep)
{
    Encoder enc;
    encodeDtmReport(enc, rep);
    return enc.data();
}

namespace {

/** Encode one fetch-throttle response table (model- or phase-level). */
void
encodeThrottleTable(Encoder &enc,
                    const std::vector<IntervalThrottlePoint> &table)
{
    enc.u32(static_cast<std::uint32_t>(table.size()));
    for (const IntervalThrottlePoint &p : table) {
        enc.f64(p.duty);
        enc.f64(p.ipcScale);
    }
}

/** Decode counterpart of encodeThrottleTable(). */
bool
decodeThrottleTable(Decoder &dec,
                    std::vector<IntervalThrottlePoint> &table)
{
    const std::uint32_t nt = dec.u32();
    if (!dec.ok() || nt > dec.remaining())
        return false;
    table.assign(nt, IntervalThrottlePoint{});
    for (std::uint32_t i = 0; i < nt; ++i) {
        table[i].duty = dec.f64();
        table[i].ipcScale = dec.f64();
    }
    return dec.ok();
}

} // namespace

void
encodeIntervalModel(Encoder &enc, const IntervalModel &m)
{
    enc.str(m.benchmark);
    enc.u64(m.familyHash);
    enc.u64(m.fitConfigHash);
    enc.f64(m.fitFreqGhz);
    enc.u32(static_cast<std::uint32_t>(m.fitFetchWidth));
    enc.u32(static_cast<std::uint32_t>(m.fitIssueWidth));
    enc.u32(static_cast<std::uint32_t>(m.fitCommitWidth));
    enc.u64(m.intervalCycles);
    enc.u64(m.totalCycles);
    enc.u64(m.totalInstructions);
    enc.u32(static_cast<std::uint32_t>(m.phases.size()));
    for (const IntervalPhase &p : m.phases) {
        enc.u64(p.cycles);
        encodeCoreResult(enc, p.stats);
        encodeThrottleTable(enc, p.throttle);
        enc.u32(static_cast<std::uint32_t>(p.bins.size()));
        for (const IntervalThrottleBin &b : p.bins) {
            enc.f64(b.duty);
            encodeCoreResult(enc, b.stats);
        }
    }
    enc.u32(static_cast<std::uint32_t>(m.ticks.size()));
    for (const IntervalTick &t : m.ticks) {
        enc.u64(t.cycles);
        enc.u64(t.insts);
        enc.u32(t.phase);
    }
    encodeThrottleTable(enc, m.throttle);
}

bool
decodeIntervalModel(Decoder &dec, IntervalModel &m)
{
    m.benchmark = dec.str();
    m.familyHash = dec.u64();
    m.fitConfigHash = dec.u64();
    m.fitFreqGhz = dec.f64();
    m.fitFetchWidth = static_cast<int>(dec.u32());
    m.fitIssueWidth = static_cast<int>(dec.u32());
    m.fitCommitWidth = static_cast<int>(dec.u32());
    m.intervalCycles = dec.u64();
    m.totalCycles = dec.u64();
    m.totalInstructions = dec.u64();
    const std::uint32_t n = dec.u32();
    // A phase is hundreds of payload bytes, so a sane count can never
    // exceed the remaining payload; this rejects corrupt counts before
    // the assign instead of allocating gigabytes.
    if (!dec.ok() || n > dec.remaining())
        return false;
    m.phases.assign(n, IntervalPhase{});
    for (std::uint32_t i = 0; i < n; ++i) {
        m.phases[i].cycles = dec.u64();
        if (!decodeCoreResult(dec, m.phases[i].stats))
            return false;
        if (!decodeThrottleTable(dec, m.phases[i].throttle))
            return false;
        const std::uint32_t nb = dec.u32();
        if (!dec.ok() || nb > dec.remaining())
            return false;
        m.phases[i].bins.assign(nb, IntervalThrottleBin{});
        for (std::uint32_t b = 0; b < nb; ++b) {
            m.phases[i].bins[b].duty = dec.f64();
            if (!decodeCoreResult(dec, m.phases[i].bins[b].stats))
                return false;
        }
    }
    const std::uint32_t nticks = dec.u32();
    if (!dec.ok() || nticks > dec.remaining())
        return false;
    m.ticks.assign(nticks, IntervalTick{});
    for (std::uint32_t i = 0; i < nticks; ++i) {
        m.ticks[i].cycles = dec.u64();
        m.ticks[i].insts = dec.u64();
        m.ticks[i].phase = dec.u32();
    }
    return decodeThrottleTable(dec, m.throttle);
}

std::vector<std::uint8_t>
serializeIntervalModel(const IntervalModel &m)
{
    Encoder enc;
    encodeIntervalModel(enc, m);
    return enc.data();
}

void
encodeMulticoreReport(Encoder &enc, const MulticoreReport &rep)
{
    enc.str(rep.config);
    enc.str(rep.policy);
    enc.f64(rep.triggerK);
    enc.f64(rep.freqGhz);
    enc.u32(rep.numCores);
    enc.u32(rep.l2Banks);
    enc.u32(rep.intervals);
    enc.f64(rep.startPeakK);
    enc.f64(rep.peakK);
    enc.f64(rep.finalPeakK);
    enc.f64(rep.totalTimeS);
    enc.f64(rep.timeAboveTriggerS);
    enc.f64(rep.throughputIpc);
    enc.u32(static_cast<std::uint32_t>(rep.cores.size()));
    for (const MulticoreCoreStats &c : rep.cores) {
        enc.str(c.benchmark);
        enc.f64(c.ipcFree);
        enc.f64(c.ipcEffective);
        enc.f64(c.throttleDuty);
        enc.f64(c.perfLost);
        enc.f64(c.startPeakK);
        enc.f64(c.peakK);
        enc.f64(c.finalPeakK);
        enc.u64(c.wallCycles);
        enc.u64(c.committed);
        enc.u64(c.l2Accesses);
        enc.f64(c.extraMissCycles);
        enc.f64(c.contentionStallFrac);
        enc.f64(c.timeAboveTriggerS);
    }
    enc.u32(static_cast<std::uint32_t>(rep.banks.size()));
    for (const MulticoreBankStats &b : rep.banks) {
        enc.u64(b.accesses);
        enc.f64(b.occupancy);
        enc.f64(b.peakOccupancy);
    }
}

bool
decodeMulticoreReport(Decoder &dec, MulticoreReport &rep)
{
    rep.config = dec.str();
    rep.policy = dec.str();
    rep.triggerK = dec.f64();
    rep.freqGhz = dec.f64();
    rep.numCores = dec.u32();
    rep.l2Banks = dec.u32();
    rep.intervals = dec.u32();
    rep.startPeakK = dec.f64();
    rep.peakK = dec.f64();
    rep.finalPeakK = dec.f64();
    rep.totalTimeS = dec.f64();
    rep.timeAboveTriggerS = dec.f64();
    rep.throughputIpc = dec.f64();
    const std::uint32_t nc = dec.u32();
    // A per-core row is >= 112 payload bytes, so a sane count can
    // never exceed the remaining payload; this rejects corrupt counts
    // before the assign instead of allocating gigabytes.
    if (!dec.ok() || nc > dec.remaining())
        return false;
    rep.cores.assign(nc, MulticoreCoreStats{});
    for (std::uint32_t i = 0; i < nc; ++i) {
        MulticoreCoreStats &c = rep.cores[i];
        c.benchmark = dec.str();
        c.ipcFree = dec.f64();
        c.ipcEffective = dec.f64();
        c.throttleDuty = dec.f64();
        c.perfLost = dec.f64();
        c.startPeakK = dec.f64();
        c.peakK = dec.f64();
        c.finalPeakK = dec.f64();
        c.wallCycles = dec.u64();
        c.committed = dec.u64();
        c.l2Accesses = dec.u64();
        c.extraMissCycles = dec.f64();
        c.contentionStallFrac = dec.f64();
        c.timeAboveTriggerS = dec.f64();
    }
    const std::uint32_t nb = dec.u32();
    if (!dec.ok() || nb > dec.remaining())
        return false;
    rep.banks.assign(nb, MulticoreBankStats{});
    for (std::uint32_t i = 0; i < nb; ++i) {
        MulticoreBankStats &b = rep.banks[i];
        b.accesses = dec.u64();
        b.occupancy = dec.f64();
        b.peakOccupancy = dec.f64();
    }
    return dec.ok();
}

std::vector<std::uint8_t>
serializeMulticoreReport(const MulticoreReport &rep)
{
    Encoder enc;
    encodeMulticoreReport(enc, rep);
    return enc.data();
}

const char *
simRequestKindName(SimRequestKind k)
{
    switch (k) {
    case SimRequestKind::Ping:    return "ping";
    case SimRequestKind::Fig8:    return "fig8";
    case SimRequestKind::Fig9:    return "fig9";
    case SimRequestKind::Fig10:   return "fig10";
    case SimRequestKind::Width:   return "width";
    case SimRequestKind::Dtm:     return "dtm";
    case SimRequestKind::Core:    return "core";
    case SimRequestKind::Metrics: return "metrics";
    case SimRequestKind::Multicore: return "multicore";
    }
    return "unknown";
}

const char *
simStatusName(SimStatus s)
{
    switch (s) {
    case SimStatus::Ok:               return "ok";
    case SimStatus::BadRequest:       return "bad-request";
    case SimStatus::Overloaded:       return "overloaded";
    case SimStatus::DeadlineExceeded: return "deadline-exceeded";
    case SimStatus::ShuttingDown:     return "shutting-down";
    case SimStatus::Internal:         return "internal";
    case SimStatus::Unavailable:      return "unavailable";
    }
    return "unknown";
}

void
encodeSimRequest(Encoder &enc, const SimRequest &req)
{
    enc.u8(static_cast<std::uint8_t>(req.kind));
    enc.u32(static_cast<std::uint32_t>(req.benchmarks.size()));
    for (const std::string &b : req.benchmarks)
        enc.str(b);
    enc.str(req.config);
    enc.u64(req.insts);
    enc.u64(req.warmup);
    enc.u32(req.deadlineMs);
    enc.str(req.dtmPolicy);
    enc.f64(req.dtmTriggerK);
    enc.u32(req.dtmIntervals);
    enc.u64(req.dtmIntervalCycles);
    enc.f64(req.dtmDilation);
    enc.u32(req.dtmGridN);
    enc.str(req.dtmSolver);
    enc.u8(req.fastPath);
    enc.u32(req.mcCores);
    enc.u32(req.mcL2Banks);
}

bool
decodeSimRequest(Decoder &dec, SimRequest &req)
{
    const std::uint8_t kind = dec.u8();
    if (kind > static_cast<std::uint8_t>(SimRequestKind::Multicore))
        return false;
    req.kind = static_cast<SimRequestKind>(kind);
    const std::uint32_t n = dec.u32();
    // Every benchmark name costs >= 4 payload bytes (its length
    // prefix), so a sane count can never exceed the remaining bytes;
    // this rejects corrupt counts before the reserve.
    if (!dec.ok() || n > dec.remaining())
        return false;
    req.benchmarks.clear();
    req.benchmarks.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        req.benchmarks.push_back(dec.str());
    req.config = dec.str();
    req.insts = dec.u64();
    req.warmup = dec.u64();
    req.deadlineMs = dec.u32();
    req.dtmPolicy = dec.str();
    req.dtmTriggerK = dec.f64();
    req.dtmIntervals = dec.u32();
    req.dtmIntervalCycles = dec.u64();
    req.dtmDilation = dec.f64();
    req.dtmGridN = dec.u32();
    req.dtmSolver = dec.str();
    req.fastPath = dec.u8();
    req.mcCores = dec.u32();
    req.mcL2Banks = dec.u32();
    return dec.ok();
}

void
encodeSimResponse(Encoder &enc, const SimResponse &rsp)
{
    enc.u8(static_cast<std::uint8_t>(rsp.status));
    enc.str(rsp.error);
    enc.str(rsp.text);
}

bool
decodeSimResponse(Decoder &dec, SimResponse &rsp)
{
    const std::uint8_t status = dec.u8();
    if (status > static_cast<std::uint8_t>(SimStatus::Unavailable))
        return false;
    rsp.status = static_cast<SimStatus>(status);
    rsp.error = dec.str();
    rsp.text = dec.str();
    return dec.ok();
}

std::vector<std::uint8_t>
flightKeyOf(const SimRequest &req)
{
    SimRequest canon = req;
    canon.deadlineMs = 0;
    Encoder enc;
    encodeSimRequest(enc, canon);
    return enc.data();
}

} // namespace th
