/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-chunk
 * integrity check of the chunked binary container (chunkio.h).
 */

#ifndef TH_IO_CRC32_H
#define TH_IO_CRC32_H

#include <cstddef>
#include <cstdint>

namespace th {

/**
 * CRC-32 of @p len bytes at @p data. Pass a previous return value as
 * @p seed to checksum a stream incrementally; the default seed (0)
 * matches zlib's crc32().
 */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

} // namespace th

#endif // TH_IO_CRC32_H
