/**
 * @file
 * The .thtrace binary trace-file format: record a TraceSource's dynamic
 * instruction stream once, then replay it into the core model. This
 * decouples trace production from simulation — recorded synthetic
 * traces, externally produced traces, and hand-crafted test streams all
 * become first-class workloads alongside the built-in generator.
 *
 * Container: chunkio.h framing with format tag "TRCE". Chunks:
 *   META  benchmark name, suite, generator seed
 *   PRFL  steady-state prefill lines (trace.h)
 *   RECS  a block of fixed-width TraceRecord encodings (u32 count +
 *         records); large traces span many RECS chunks
 */

#ifndef TH_IO_TRACE_FILE_H
#define TH_IO_TRACE_FILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "io/chunkio.h"
#include "trace/trace.h"

namespace th {

/** Schema version of the .thtrace chunk payloads. */
inline constexpr std::uint32_t kTraceSchemaVersion = 1;

/** Container format tag of .thtrace files. */
inline constexpr const char *kTraceFormatTag = "TRCE";

/** Metadata of a trace file (META chunk + derived counts). */
struct TraceFileInfo
{
    std::string benchmark;
    std::string suite;
    std::uint64_t seed = 0;
    std::uint64_t numRecords = 0;
    std::uint64_t numPrefillLines = 0;
    std::uint32_t schemaVersion = 0;
};

/** Encode one record in the fixed RECS layout (shared with tests). */
void encodeTraceRecord(Encoder &enc, const TraceRecord &rec);

/** Decode one record; false on bounds/enum violations. */
bool decodeTraceRecord(Decoder &dec, TraceRecord &rec);

/**
 * Record up to @p max_records from @p src into @p path (fewer when the
 * source ends first). The source is consumed from its current
 * position; callers wanting the canonical stream pass a fresh source.
 * Returns false on I/O failure with @p err describing why.
 */
bool recordTrace(const std::string &path, TraceSource &src,
                 std::uint64_t max_records, const std::string &benchmark,
                 const std::string &suite, std::uint64_t seed,
                 std::string *err = nullptr);

/**
 * Read and fully validate a trace file's metadata (every chunk is
 * CRC-checked, so this doubles as an integrity scan).
 */
bool readTraceInfo(const std::string &path, TraceFileInfo &info,
                   std::string *err = nullptr);

/**
 * TraceSource that replays a .thtrace file. The file is loaded and
 * validated up front; next() then streams records with no I/O on the
 * simulation path, and reset() rewinds for multi-run reuse.
 */
class TraceFileReplay : public TraceSource
{
  public:
    /** Load @p path; false (with @p err) on open/validation failure. */
    bool open(const std::string &path, std::string *err = nullptr);

    const TraceFileInfo &info() const { return info_; }

    bool next(TraceRecord &rec) override;
    void reset() override;
    void prefillLines(std::vector<PrefillLine> &lines) const override;

  private:
    TraceFileInfo info_;
    std::vector<TraceRecord> records_;
    std::vector<PrefillLine> prefill_;
    std::size_t pos_ = 0;
};

} // namespace th

#endif // TH_IO_TRACE_FILE_H
