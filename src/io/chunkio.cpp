#include "io/chunkio.h"

#include <cstring>

#include "common/log.h"
#include "io/crc32.h"

namespace th {

namespace {

constexpr char kMagic[4] = {'T', 'H', 'I', 'O'};

} // namespace

const char *
chunkErrorName(ChunkError e)
{
    switch (e) {
    case ChunkError::None:             return "none";
    case ChunkError::ShortHeader:      return "short-header";
    case ChunkError::BadMagic:         return "bad-magic";
    case ChunkError::FormatMismatch:   return "format-mismatch";
    case ChunkError::BadVersion:       return "bad-version";
    case ChunkError::TruncatedHeader:  return "truncated-header";
    case ChunkError::Oversize:         return "oversize";
    case ChunkError::EmptyChunk:       return "empty-chunk";
    case ChunkError::TruncatedPayload: return "truncated-payload";
    case ChunkError::CrcMismatch:      return "crc-mismatch";
    case ChunkError::NotOpen:          return "not-open";
    }
    return "unknown";
}

// ---------------------------------------------------------------------
// Sinks / sources.
// ---------------------------------------------------------------------

bool
FileSink::write(const void *data, std::size_t len)
{
    if (!f_)
        return false;
    return std::fwrite(data, 1, len, f_) == len;
}

bool
MemSink::write(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
    return true;
}

std::size_t
FileSource::read(void *data, std::size_t len)
{
    if (!f_)
        return 0;
    return std::fread(data, 1, len, f_);
}

bool
FileSource::rewind()
{
    if (!f_)
        return false;
    return std::fseek(f_, 0, SEEK_SET) == 0;
}

std::size_t
MemSource::read(void *data, std::size_t len)
{
    const std::size_t n = std::min(len, len_ - pos_);
    std::memcpy(data, p_ + pos_, n);
    pos_ += n;
    return n;
}

bool
MemSource::rewind()
{
    pos_ = 0;
    return true;
}

// ---------------------------------------------------------------------
// Encoder / Decoder.
// ---------------------------------------------------------------------

void
Encoder::u16(std::uint16_t v)
{
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
}

void
Encoder::u32(std::uint32_t v)
{
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
}

void
Encoder::u64(std::uint64_t v)
{
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void
Encoder::f64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Encoder::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

void
Encoder::bytes(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

void
Encoder::patchU32(std::size_t offset, std::uint32_t v)
{
    if (offset + 4 > buf_.size())
        panic("patchU32 out of range (offset %zu, size %zu)", offset,
              buf_.size());
    for (int i = 0; i < 4; ++i)
        buf_[offset + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

bool
Decoder::take(void *out, std::size_t n)
{
    if (!ok_ || len_ - pos_ < n) {
        ok_ = false;
        std::memset(out, 0, n);
        return false;
    }
    std::memcpy(out, p_ + pos_, n);
    pos_ += n;
    return true;
}

std::uint8_t
Decoder::u8()
{
    std::uint8_t v;
    take(&v, 1);
    return v;
}

std::uint16_t
Decoder::u16()
{
    std::uint8_t b[2];
    take(b, 2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t
Decoder::u32()
{
    std::uint8_t b[4];
    take(b, 4);
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t
Decoder::u64()
{
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
}

double
Decoder::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Decoder::str()
{
    const std::uint32_t n = u32();
    if (!ok_ || len_ - pos_ < n) {
        ok_ = false;
        return std::string();
    }
    std::string s(reinterpret_cast<const char *>(p_ + pos_), n);
    pos_ += n;
    return s;
}

// ---------------------------------------------------------------------
// ChunkWriter / ChunkReader.
// ---------------------------------------------------------------------

bool
ChunkWriter::begin(const char *format_tag, std::uint32_t schema_version)
{
    if (std::strlen(format_tag) != 4)
        panic("chunk format tag must be 4 characters: '%s'", format_tag);
    Encoder header;
    header.bytes(kMagic, 4);
    header.bytes(format_tag, 4);
    header.u32(kContainerVersion);
    header.u32(schema_version);
    ok_ = sink_.write(header.data().data(), header.size());
    return ok_;
}

bool
ChunkWriter::chunk(const char *tag, const Encoder &payload)
{
    if (std::strlen(tag) != 4)
        panic("chunk tag must be 4 characters: '%s'", tag);
    if (!ok_)
        return false;
    Encoder frame;
    frame.bytes(tag, 4);
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u32(crc32(payload.data().data(), payload.size()));
    ok_ = sink_.write(frame.data().data(), frame.size()) &&
          sink_.write(payload.data().data(), payload.size());
    return ok_;
}

bool
ChunkReader::readHeader(const char *expect_format,
                        std::uint32_t &schema_version, std::string &err)
{
    last_error_ = ChunkError::None;
    std::uint8_t raw[16];
    if (src_.read(raw, sizeof(raw)) != sizeof(raw)) {
        err = "short read in container header";
        last_error_ = ChunkError::ShortHeader;
        return false;
    }
    if (std::memcmp(raw, kMagic, 4) != 0) {
        err = "bad magic (not a THIO container)";
        last_error_ = ChunkError::BadMagic;
        return false;
    }
    if (std::memcmp(raw + 4, expect_format, 4) != 0) {
        err = strformat("format tag mismatch: got '%.4s', want '%s'",
                        reinterpret_cast<const char *>(raw + 4),
                        expect_format);
        last_error_ = ChunkError::FormatMismatch;
        return false;
    }
    Decoder d(raw + 8, 8);
    const std::uint32_t container = d.u32();
    schema_version = d.u32();
    if (container != kContainerVersion) {
        err = strformat("unsupported container version %u", container);
        last_error_ = ChunkError::BadVersion;
        return false;
    }
    return true;
}

ChunkReader::Next
ChunkReader::next(std::string &tag, std::vector<std::uint8_t> &payload,
                  std::string &err)
{
    last_error_ = ChunkError::None;
    std::uint8_t raw[12];
    const std::size_t got = src_.read(raw, sizeof(raw));
    if (got == 0)
        return Next::End;
    if (got != sizeof(raw)) {
        err = "truncated chunk header";
        last_error_ = ChunkError::TruncatedHeader;
        return Next::Corrupt;
    }
    tag.assign(reinterpret_cast<const char *>(raw), 4);
    Decoder d(raw + 4, 8);
    const std::uint32_t len = d.u32();
    const std::uint32_t want_crc = d.u32();
    // Reject the declared length BEFORE resizing the payload buffer: a
    // hostile frame must not be able to trigger a huge allocation.
    if (len > max_chunk_bytes_) {
        err = strformat("chunk '%s' length %u exceeds cap %u",
                        tag.c_str(), len, max_chunk_bytes_);
        last_error_ = ChunkError::Oversize;
        return Next::Corrupt;
    }
    if (len == 0) {
        err = strformat("chunk '%s' has a zero-length payload",
                        tag.c_str());
        last_error_ = ChunkError::EmptyChunk;
        return Next::Corrupt;
    }
    payload.resize(len);
    if (src_.read(payload.data(), len) != len) {
        err = "truncated chunk payload";
        last_error_ = ChunkError::TruncatedPayload;
        return Next::Corrupt;
    }
    const std::uint32_t got_crc = crc32(payload.data(), payload.size());
    if (got_crc != want_crc) {
        err = strformat("chunk '%s' CRC mismatch (%08x != %08x)",
                        tag.c_str(), got_crc, want_crc);
        last_error_ = ChunkError::CrcMismatch;
        return Next::Corrupt;
    }
    return Next::Chunk;
}

// ---------------------------------------------------------------------
// File wrappers.
// ---------------------------------------------------------------------

ChunkFileWriter::~ChunkFileWriter()
{
    if (f_)
        std::fclose(f_);
}

bool
ChunkFileWriter::open(const std::string &path, const char *format_tag,
                      std::uint32_t schema_version)
{
    if (f_)
        return false;
    f_ = std::fopen(path.c_str(), "wb");
    if (!f_)
        return false;
    sink_.setFile(f_);
    return writer_.begin(format_tag, schema_version);
}

bool
ChunkFileWriter::chunk(const char *tag, const Encoder &payload)
{
    return f_ != nullptr && writer_.chunk(tag, payload);
}

bool
ChunkFileWriter::close()
{
    if (!f_)
        return false;
    bool ok = writer_.ok();
    ok = std::fflush(f_) == 0 && ok;
    ok = std::fclose(f_) == 0 && ok;
    f_ = nullptr;
    sink_.setFile(nullptr);
    return ok;
}

ChunkFileReader::~ChunkFileReader()
{
    close();
}

bool
ChunkFileReader::open(const std::string &path, const char *expect_format,
                      std::uint32_t &schema_version, std::string &err)
{
    if (f_)
        close();
    f_ = std::fopen(path.c_str(), "rb");
    if (!f_) {
        err = strformat("cannot open '%s'", path.c_str());
        last_error_ = ChunkError::NotOpen;
        return false;
    }
    src_.setFile(f_);
    if (!reader_.readHeader(expect_format, schema_version, err)) {
        last_error_ = reader_.lastError();
        close();
        return false;
    }
    last_error_ = ChunkError::None;
    return true;
}

ChunkReader::Next
ChunkFileReader::next(std::string &tag, std::vector<std::uint8_t> &payload,
                      std::string &err)
{
    if (!f_) {
        err = "reader is not open";
        last_error_ = ChunkError::NotOpen;
        return ChunkReader::Next::Corrupt;
    }
    const ChunkReader::Next r = reader_.next(tag, payload, err);
    last_error_ = reader_.lastError();
    return r;
}

void
ChunkFileReader::close()
{
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
        src_.setFile(nullptr);
    }
}

} // namespace th
