#include "dtm/engine.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "core/pipeline.h"
#include "thermal/grid.h"

namespace th {

namespace {

/**
 * Deposit one interval's power map onto the grid. Dynamic and clock
 * power scale with @p duty (wall-averaging: the gated clock spends
 * duty of the interval switching); leakage burns whenever the supply
 * is on, i.e. always. Mirrors HotspotModel::analyze's block placement
 * but without the leakage-temperature feedback — the transient loop
 * resamples power every interval anyway, and nominal leakage keeps the
 * closed loop's actuation the only feedback path.
 */
void
depositPower(ThermalGrid &grid, const Floorplan &fp,
             const PowerResult &power, bool stacked, double duty)
{
    const int dies = stacked ? kNumDies : 1;
    const double total_area = fp.blockArea();
    for (const BlockRect &rect : fp.blocks) {
        const double area_frac = rect.area() / total_area;
        for (int d = 0; d < dies; ++d) {
            double dyn;
            if (rect.id == BlockId::L2) {
                dyn = power.l2.dieW[static_cast<size_t>(d)];
            } else {
                dyn = power.coreBlocks[static_cast<size_t>(rect.id)]
                          .dieW[static_cast<size_t>(d)];
            }
            const double watts =
                duty * (dyn + power.clockW * area_frac / dies) +
                power.leakW * area_frac / dies;
            grid.addPower(d, rect.x, rect.y, rect.w, rect.h, watts);
        }
    }
}

} // namespace

DtmEngine::DtmEngine(const PowerModel &power, const HotspotModel &hotspot,
                     const Floorplan &planar_fp,
                     const Floorplan &stacked_fp)
    : power_(power), hotspot_(hotspot), planar_(planar_fp),
      stacked_(stacked_fp)
{
}

DtmReport
DtmEngine::run(const BenchmarkProfile &profile, const CoreConfig &cfg,
               const std::string &config_name, const DtmOptions &opts,
               const CancelToken *cancel) const
{
    SyntheticTrace trace(profile);
    Core core(cfg);
    core.beginRun(trace, opts.warmupInstructions);
    CoreIntervalSource src(core);
    return run(src, profile.name, cfg, config_name, opts, cancel);
}

DtmReport
DtmEngine::run(IntervalSource &src, const std::string &benchmark,
               const CoreConfig &cfg, const std::string &config_name,
               const DtmOptions &opts, const CancelToken *cancel,
               TransientScheme scheme) const
{
    if (!power_.calibrated())
        fatal("DTM engine needs a calibrated power model");
    if (opts.intervalCycles == 0 || opts.maxIntervals < 1)
        fatal("DTM needs a positive interval length and count");
    if (opts.gridN < 4)
        fatal("DTM thermal grid too coarse (gridN %d)", opts.gridN);

    const Floorplan &fp = cfg.stacked ? stacked_ : planar_;
    ThermalParams tp = hotspot_.params();
    tp.gridN = opts.gridN;
    tp.solver = opts.solver;
    ThermalGrid grid(tp,
                     cfg.stacked ? HotspotModel::stackedStack()
                                 : HotspotModel::planarStack(),
                     fp.chipW, fp.chipH);
    const std::vector<int> die_layers = grid.dieLayers();

    const double wall_interval_s =
        static_cast<double>(opts.intervalCycles) / (cfg.freqGhz * 1e9);
    const double thermal_interval_s =
        wall_interval_s * opts.timeDilation;

    DtmReport rep;
    rep.benchmark = benchmark;
    rep.config = config_name;
    rep.policy = dtmPolicyName(opts.policy);
    rep.triggerK = opts.triggers.triggerK;
    rep.freqGhz = cfg.freqGhz;

    // Measurement interval: one free-running interval establishes the
    // sustained power map and the baseline IPC the perf-lost metric is
    // judged against.
    const CoreResult first = src.runFor(opts.intervalCycles);
    if (first.perf.cycles.value() == 0)
        fatal("trace of '%s' drained before the first DTM interval",
              benchmark.c_str());
    const PowerResult free_power = power_.compute(first, cfg);
    rep.ipcFree = first.perf.ipc();

    // Starting state: the steady field of the free-running map — the
    // temperature the package settles at if DTM never intervenes. The
    // policy's first decision sees exactly this operating point.
    depositPower(grid, fp, free_power, cfg.stacked, 1.0);
    ThermalField init = grid.solve();
    rep.startPeakK = init.peak(die_layers);
    rep.peakK = rep.startPeakK;

    // The explicit scheme's step request is the options' maxDtS (the
    // stability clamp usually bites first). The implicit scheme is
    // stable at any lateral-bounded step, so its request is accuracy-
    // driven: a fixed fraction of the control interval, fine enough
    // that the resolved (lateral + sink) dynamics match the explicit
    // trajectory to well under the fast path's anchor error bounds.
    constexpr double kImplicitStepsPerInterval = 16.0;
    const double dt_request =
        scheme == TransientScheme::VerticalImplicit
            ? thermal_interval_s / kImplicitStepsPerInterval
            : opts.maxDtS;
    TransientStepper stepper(grid, init, dt_request, scheme);
    std::unique_ptr<DtmPolicy> policy =
        makeDtmPolicy(opts.policy, opts.triggers);

    double peak_now = rep.startPeakK;
    double duty_removed = 0.0;
    rep.intervals.reserve(static_cast<size_t>(opts.maxIntervals));

    for (int i = 0; i < opts.maxIntervals && !src.done(); ++i) {
        if (cancel != nullptr && cancel->cancelled())
            throw Cancelled();
        const DtmControl ctl = policy->decide(peak_now);
        src.setFetchThrottle(ctl.fetchOn, ctl.fetchPeriod);
        const auto run_cycles = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::llround(
                   ctl.clockDuty *
                   static_cast<double>(opts.intervalCycles))));

        const CoreResult r = src.runFor(run_cycles);
        if (r.perf.cycles.value() == 0)
            break; // Trace drained exactly at the boundary.

        const PowerResult p = power_.compute(r, cfg);
        grid.clearPower();
        depositPower(grid, fp, p, cfg.stacked, ctl.clockDuty);
        stepper.advance(thermal_interval_s);
        peak_now = stepper.field().peak(die_layers);

        DtmIntervalSample s;
        s.timeS = stepper.timeS();
        s.peakK = peak_now;
        s.clockDuty = ctl.clockDuty;
        s.fetchOn = ctl.fetchOn;
        s.fetchPeriod = ctl.fetchPeriod;
        s.cycles = r.perf.cycles.value();
        s.committed = r.perf.committedInsts.value();
        s.powerW = ctl.clockDuty * (p.dynamicW() + p.clockW) + p.leakW;
        s.throttled = ctl.throttled();
        rep.intervals.push_back(s);

        rep.peakK = std::max(rep.peakK, peak_now);
        rep.wallCycles += opts.intervalCycles;
        rep.committed += s.committed;
        duty_removed += 1.0 - ctl.dutyFraction();
        if (peak_now > opts.triggers.triggerK)
            rep.timeAboveTriggerS += thermal_interval_s;
    }

    const auto n = static_cast<double>(rep.intervals.size());
    rep.finalPeakK = peak_now;
    rep.totalTimeS = stepper.timeS();
    rep.throttleDuty = n > 0.0 ? duty_removed / n : 0.0;
    rep.ipcEffective =
        rep.wallCycles > 0
            ? static_cast<double>(rep.committed) /
                  static_cast<double>(rep.wallCycles)
            : 0.0;
    rep.perfLost =
        rep.ipcFree > 0.0
            ? std::max(0.0, 1.0 - rep.ipcEffective / rep.ipcFree)
            : 0.0;
    return rep;
}

} // namespace th
