/**
 * @file
 * Pluggable dynamic-thermal-management policies. Each interval the DTM
 * engine feeds the current stack peak temperature to a policy, which
 * chooses the actuator setting for the *next* interval: a global
 * clock-gating duty cycle (the core runs duty * interval cycles of
 * work per interval of wall time) or a fetch-throttle cadence (the
 * front end fetches on of every period cycles). Policies are
 * stateful ladders with hysteresis so regulation is stable around the
 * trigger instead of oscillating at full amplitude.
 */

#ifndef TH_DTM_POLICY_H
#define TH_DTM_POLICY_H

#include <memory>
#include <string>

namespace th {

/** Available DTM mechanisms. */
enum class DtmPolicyKind {
    None,         ///< Free run; measurement only.
    ClockGate,    ///< Global clock gating at a duty-cycle ladder.
    FetchThrottle ///< Front-end fetch cadence ladder.
};

/** Display name ("none", "clockgate", "fetch"). */
const char *dtmPolicyName(DtmPolicyKind kind);

/** Parse a policy name; false (out untouched) when unknown. */
bool dtmPolicyByName(const std::string &name, DtmPolicyKind &out);

/** Actuator setting for one control interval. */
struct DtmControl
{
    /** Fraction of the interval the clock runs (global gating). */
    double clockDuty = 1.0;
    /** Fetch cadence: fetch enabled @c fetchOn of every
     *  @c fetchPeriod cycles. */
    int fetchOn = 1;
    int fetchPeriod = 1;

    bool throttled() const
    {
        return clockDuty < 1.0 || fetchOn < fetchPeriod;
    }

    /** Fraction of full-speed operation this control permits. */
    double dutyFraction() const
    {
        return clockDuty * static_cast<double>(fetchOn) /
               static_cast<double>(fetchPeriod);
    }
};

/** Trigger threshold shared by the throttling policies. */
struct DtmTriggers
{
    /**
     * Engage throttling when the stack peak exceeds this (K). The
     * default sits between the sustained peaks of the planar baseline
     * (~359 K) and the naive 3D stack (~365 K): only the un-herded 3D
     * design trips DTM, reproducing the paper's Section 5.3 argument
     * that Thermal Herding is what makes stacking thermally viable.
     */
    double triggerK = 360.0;
    /** Release a throttle level only below trigger - hysteresis. */
    double hysteresisK = 1.5;
};

/**
 * A DTM control policy. Stateful: decide() is called once per interval
 * in time order and may remember its ladder position.
 */
class DtmPolicy
{
  public:
    virtual ~DtmPolicy() = default;

    virtual DtmPolicyKind kind() const = 0;

    /** Choose the next interval's control given the current peak. */
    virtual DtmControl decide(double peak_k) = 0;
};

/** Construct a policy of @p kind regulating around @p trig. */
std::unique_ptr<DtmPolicy> makeDtmPolicy(DtmPolicyKind kind,
                                         const DtmTriggers &trig);

} // namespace th

#endif // TH_DTM_POLICY_H
