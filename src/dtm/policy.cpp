#include "dtm/policy.h"

#include <algorithm>

#include "common/log.h"

namespace th {

namespace {

/**
 * Shared ladder behaviour: one step hotter than the trigger escalates
 * a level, one step below (trigger - hysteresis) releases a level.
 * Single-level moves per interval keep the closed loop from slamming
 * between extremes on the ~quasi-steady thermal response.
 */
class LadderPolicy : public DtmPolicy
{
  public:
    LadderPolicy(const DtmTriggers &trig, int levels)
        : trig_(trig), levels_(levels)
    {
    }

    DtmControl decide(double peak_k) override
    {
        if (peak_k > trig_.triggerK)
            level_ = std::min(level_ + 1, levels_ - 1);
        else if (peak_k < trig_.triggerK - trig_.hysteresisK)
            level_ = std::max(level_ - 1, 0);
        return controlAt(level_);
    }

  protected:
    virtual DtmControl controlAt(int level) const = 0;

  private:
    DtmTriggers trig_;
    int levels_;
    int level_ = 0;
};

class NonePolicy : public DtmPolicy
{
  public:
    DtmPolicyKind kind() const override { return DtmPolicyKind::None; }
    DtmControl decide(double) override { return DtmControl{}; }
};

class ClockGatePolicy : public LadderPolicy
{
  public:
    explicit ClockGatePolicy(const DtmTriggers &trig)
        : LadderPolicy(trig, 4)
    {
    }

    DtmPolicyKind kind() const override
    {
        return DtmPolicyKind::ClockGate;
    }

  protected:
    DtmControl controlAt(int level) const override
    {
        static constexpr double kDuty[4] = {1.0, 0.75, 0.5, 0.25};
        DtmControl c;
        c.clockDuty = kDuty[level];
        return c;
    }
};

class FetchThrottlePolicy : public LadderPolicy
{
  public:
    explicit FetchThrottlePolicy(const DtmTriggers &trig)
        : LadderPolicy(trig, 4)
    {
    }

    DtmPolicyKind kind() const override
    {
        return DtmPolicyKind::FetchThrottle;
    }

  protected:
    DtmControl controlAt(int level) const override
    {
        static constexpr int kOn[4] = {1, 3, 1, 1};
        static constexpr int kPeriod[4] = {1, 4, 2, 4};
        DtmControl c;
        c.fetchOn = kOn[level];
        c.fetchPeriod = kPeriod[level];
        return c;
    }
};

} // namespace

const char *
dtmPolicyName(DtmPolicyKind kind)
{
    switch (kind) {
    case DtmPolicyKind::None:
        return "none";
    case DtmPolicyKind::ClockGate:
        return "clockgate";
    case DtmPolicyKind::FetchThrottle:
        return "fetch";
    }
    return "?";
}

bool
dtmPolicyByName(const std::string &name, DtmPolicyKind &out)
{
    for (DtmPolicyKind k :
         {DtmPolicyKind::None, DtmPolicyKind::ClockGate,
          DtmPolicyKind::FetchThrottle}) {
        if (name == dtmPolicyName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

std::unique_ptr<DtmPolicy>
makeDtmPolicy(DtmPolicyKind kind, const DtmTriggers &trig)
{
    switch (kind) {
    case DtmPolicyKind::None:
        return std::make_unique<NonePolicy>();
    case DtmPolicyKind::ClockGate:
        return std::make_unique<ClockGatePolicy>(trig);
    case DtmPolicyKind::FetchThrottle:
        return std::make_unique<FetchThrottlePolicy>(trig);
    }
    panic("unknown DTM policy kind %d", static_cast<int>(kind));
}

} // namespace th
