/**
 * @file
 * Closed-loop dynamic thermal management engine — the interval-coupled
 * performance -> power -> transient-thermal loop (the CoMeT-style
 * methodology) the paper's Section 5 DTM claims call for.
 *
 * Each control interval the engine (1) runs the core incrementally for
 * one interval of cycles (scaled by the policy's clock duty), (2)
 * converts the interval's activity delta into a PowerResult with the
 * calibrated power model, (3) deposits that power onto the thermal
 * grid — dynamic and clock power scaled by the duty cycle, leakage
 * always on — and marches the resumable transient stepper forward by
 * the interval's (dilated) wall time, then (4) feeds the new stack
 * peak temperature to the DtmPolicy, which picks the next interval's
 * actuator setting. The run starts from the steady-state field of the
 * free-running power map, so the policy immediately sees whether the
 * configuration's sustained operating point violates the trigger (the
 * paper's qualitative claim: naive 3D does, herding does not).
 */

#ifndef TH_DTM_ENGINE_H
#define TH_DTM_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "core/params.h"
#include "core/pipeline.h"
#include "dtm/policy.h"
#include "floorplan/floorplan.h"
#include "power/power_model.h"
#include "thermal/hotspot.h"
#include "trace/generator.h"

namespace th {

/** Knobs of one DTM run. */
struct DtmOptions
{
    /** Control interval length in core cycles. */
    std::uint64_t intervalCycles = 50000;
    /** Number of control intervals simulated (after the measurement
     *  interval that establishes the free-running operating point). */
    int maxIntervals = 40;
    /** Core warm-up window before the first interval (instructions). */
    std::uint64_t warmupInstructions = 20000;

    DtmPolicyKind policy = DtmPolicyKind::ClockGate;
    DtmTriggers triggers;

    /**
     * Thermal-time acceleration. One 50K-cycle interval spans ~19 us
     * of wall time — far below the millisecond die/spreader time
     * constants, so an undilated run would never move the thermal
     * state. Each interval's power map is instead held for
     * timeDilation x the interval's wall time, standing in for the
     * paper-scale sampling windows a full-length trace would provide.
     */
    double timeDilation = 400.0;

    /** Thermal grid resolution (coarser than Fig. 10's default 48:
     *  the transient loop steps the grid thousands of times). */
    int gridN = 16;
    /** Requested transient step; clamped to the stability bound. */
    double maxDtS = 1e-4;
    /** Steady-state solver for the free-running starting field
     *  (multigrid pays off at high gridN). */
    SolverKind solver = SolverKind::Sor;
};

/** One control interval of a DTM run. */
struct DtmIntervalSample
{
    double timeS = 0.0;  ///< Dilated thermal time at interval end.
    double peakK = 0.0;  ///< Stack peak at interval end.
    double clockDuty = 1.0;
    int fetchOn = 1;
    int fetchPeriod = 1;
    std::uint64_t cycles = 0;    ///< Core cycles actually run.
    std::uint64_t committed = 0; ///< Instructions committed.
    double powerW = 0.0;         ///< Wall-averaged chip power.
    bool throttled = false;
};

/** Results of one closed-loop DTM run (serialized by io/serialize.h). */
struct DtmReport
{
    std::string benchmark;
    std::string config; ///< Configuration display name.
    std::string policy; ///< dtmPolicyName() of the active policy.
    double triggerK = 0.0;
    double freqGhz = 0.0;

    std::vector<DtmIntervalSample> intervals;

    /** Steady-state stack peak of the free-running power map. */
    double startPeakK = 0.0;
    /** Hottest instantaneous stack peak over the run. */
    double peakK = 0.0;
    double finalPeakK = 0.0;

    double totalTimeS = 0.0;        ///< Dilated time simulated.
    double timeAboveTriggerS = 0.0; ///< Dilated time above trigger.

    /** Mean fraction of machine capacity removed by the actuators
     *  (0 = never throttled, 0.75 = pinned at the deepest level). */
    double throttleDuty = 0.0;
    /** Throughput lost to DTM: 1 - effective IPC / free-run IPC. */
    double perfLost = 0.0;

    double ipcFree = 0.0;      ///< Unthrottled interval-0 IPC.
    double ipcEffective = 0.0; ///< Committed / wall cycles.
    std::uint64_t wallCycles = 0;
    std::uint64_t committed = 0;
};

/**
 * What the DTM control loop needs from a performance model: an
 * actuator for the fetch throttle and an incremental stepper that
 * yields per-interval delta statistics. The cycle-accurate Core
 * satisfies it via CoreIntervalSource; the fitted-model fast path via
 * interval/replay.h's ReplayIntervalSource. The engine is oblivious
 * to which one drives it.
 */
class IntervalSource
{
  public:
    virtual ~IntervalSource() = default;

    /** Fetch enabled @p on cycles out of every @p period (1/1 = off). */
    virtual void setFetchThrottle(int on, int period) = 0;

    /**
     * Advance up to @p cycles cycles and return that interval's delta
     * statistics (zero cycles once the workload is exhausted).
     */
    virtual CoreResult runFor(std::uint64_t cycles) = 0;

    /** True once the workload ended and no further work remains. */
    virtual bool done() const = 0;
};

/** The exact path: pure delegation to a stepping cycle-level Core. */
class CoreIntervalSource : public IntervalSource
{
  public:
    /** @p core must have beginRun() already called and outlive this. */
    explicit CoreIntervalSource(Core &core) : core_(core) {}

    void setFetchThrottle(int on, int period) override
    {
        core_.setFetchThrottle(on, period);
    }
    CoreResult runFor(std::uint64_t cycles) override
    {
        return core_.runFor(cycles);
    }
    bool done() const override { return core_.runDone(); }

  private:
    Core &core_;
};

/**
 * The interval-coupling engine. Stateless across runs: construct once
 * per System and call run() per (benchmark, config, options) triple.
 * The power model must already be calibrated.
 */
class DtmEngine
{
  public:
    DtmEngine(const PowerModel &power, const HotspotModel &hotspot,
              const Floorplan &planar_fp, const Floorplan &stacked_fp);

    /**
     * Run the closed loop over the cycle-accurate core (the exact
     * path): constructs the trace and Core, then delegates to the
     * IntervalSource overload below — computationally identical to
     * driving it by hand.
     *
     * @p cancel, when non-null, is checked between control intervals;
     * a fired token aborts the run with a Cancelled throw.
     */
    DtmReport run(const BenchmarkProfile &profile,
                  const CoreConfig &cfg, const std::string &config_name,
                  const DtmOptions &opts,
                  const CancelToken *cancel = nullptr) const;

    /**
     * Run the closed loop over an arbitrary interval source (warmed-up
     * and ready to step). @p cfg supplies the frequency, floorplan
     * selection, and power-model configuration the source's statistics
     * are interpreted under.
     *
     * @p scheme selects the transient integrator: the cycle-accurate
     * path keeps the explicit stepper (byte-compatible with every
     * report produced before the scheme existed), while interval
     * replay passes TransientScheme::VerticalImplicit — with the core
     * model reduced to a table lookup, the explicit stepper's
     * stability-bound microsecond steps would dominate the fast path's
     * wall clock, and the implicit scheme steps at a fixed fraction of
     * the control interval instead (engine.cpp kImplicitStepsPerInterval).
     * The fast path's exact anchors measure whatever error the scheme
     * difference adds, so it is bounded, not assumed.
     */
    DtmReport run(IntervalSource &src, const std::string &benchmark,
                  const CoreConfig &cfg, const std::string &config_name,
                  const DtmOptions &opts,
                  const CancelToken *cancel = nullptr,
                  TransientScheme scheme =
                      TransientScheme::Explicit) const;

  private:
    const PowerModel &power_;
    const HotspotModel &hotspot_;
    const Floorplan &planar_;
    const Floorplan &stacked_;
};

} // namespace th

#endif // TH_DTM_ENGINE_H
