/**
 * @file
 * Closed-loop dynamic thermal management engine — the interval-coupled
 * performance -> power -> transient-thermal loop (the CoMeT-style
 * methodology) the paper's Section 5 DTM claims call for.
 *
 * Each control interval the engine (1) runs the core incrementally for
 * one interval of cycles (scaled by the policy's clock duty), (2)
 * converts the interval's activity delta into a PowerResult with the
 * calibrated power model, (3) deposits that power onto the thermal
 * grid — dynamic and clock power scaled by the duty cycle, leakage
 * always on — and marches the resumable transient stepper forward by
 * the interval's (dilated) wall time, then (4) feeds the new stack
 * peak temperature to the DtmPolicy, which picks the next interval's
 * actuator setting. The run starts from the steady-state field of the
 * free-running power map, so the policy immediately sees whether the
 * configuration's sustained operating point violates the trigger (the
 * paper's qualitative claim: naive 3D does, herding does not).
 */

#ifndef TH_DTM_ENGINE_H
#define TH_DTM_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "core/params.h"
#include "dtm/policy.h"
#include "floorplan/floorplan.h"
#include "power/power_model.h"
#include "thermal/hotspot.h"
#include "trace/generator.h"

namespace th {

/** Knobs of one DTM run. */
struct DtmOptions
{
    /** Control interval length in core cycles. */
    std::uint64_t intervalCycles = 50000;
    /** Number of control intervals simulated (after the measurement
     *  interval that establishes the free-running operating point). */
    int maxIntervals = 40;
    /** Core warm-up window before the first interval (instructions). */
    std::uint64_t warmupInstructions = 20000;

    DtmPolicyKind policy = DtmPolicyKind::ClockGate;
    DtmTriggers triggers;

    /**
     * Thermal-time acceleration. One 50K-cycle interval spans ~19 us
     * of wall time — far below the millisecond die/spreader time
     * constants, so an undilated run would never move the thermal
     * state. Each interval's power map is instead held for
     * timeDilation x the interval's wall time, standing in for the
     * paper-scale sampling windows a full-length trace would provide.
     */
    double timeDilation = 400.0;

    /** Thermal grid resolution (coarser than Fig. 10's default 48:
     *  the transient loop steps the grid thousands of times). */
    int gridN = 16;
    /** Requested transient step; clamped to the stability bound. */
    double maxDtS = 1e-4;
    /** Steady-state solver for the free-running starting field
     *  (multigrid pays off at high gridN). */
    SolverKind solver = SolverKind::Sor;
};

/** One control interval of a DTM run. */
struct DtmIntervalSample
{
    double timeS = 0.0;  ///< Dilated thermal time at interval end.
    double peakK = 0.0;  ///< Stack peak at interval end.
    double clockDuty = 1.0;
    int fetchOn = 1;
    int fetchPeriod = 1;
    std::uint64_t cycles = 0;    ///< Core cycles actually run.
    std::uint64_t committed = 0; ///< Instructions committed.
    double powerW = 0.0;         ///< Wall-averaged chip power.
    bool throttled = false;
};

/** Results of one closed-loop DTM run (serialized by io/serialize.h). */
struct DtmReport
{
    std::string benchmark;
    std::string config; ///< Configuration display name.
    std::string policy; ///< dtmPolicyName() of the active policy.
    double triggerK = 0.0;
    double freqGhz = 0.0;

    std::vector<DtmIntervalSample> intervals;

    /** Steady-state stack peak of the free-running power map. */
    double startPeakK = 0.0;
    /** Hottest instantaneous stack peak over the run. */
    double peakK = 0.0;
    double finalPeakK = 0.0;

    double totalTimeS = 0.0;        ///< Dilated time simulated.
    double timeAboveTriggerS = 0.0; ///< Dilated time above trigger.

    /** Mean fraction of machine capacity removed by the actuators
     *  (0 = never throttled, 0.75 = pinned at the deepest level). */
    double throttleDuty = 0.0;
    /** Throughput lost to DTM: 1 - effective IPC / free-run IPC. */
    double perfLost = 0.0;

    double ipcFree = 0.0;      ///< Unthrottled interval-0 IPC.
    double ipcEffective = 0.0; ///< Committed / wall cycles.
    std::uint64_t wallCycles = 0;
    std::uint64_t committed = 0;
};

/**
 * The interval-coupling engine. Stateless across runs: construct once
 * per System and call run() per (benchmark, config, options) triple.
 * The power model must already be calibrated.
 */
class DtmEngine
{
  public:
    DtmEngine(const PowerModel &power, const HotspotModel &hotspot,
              const Floorplan &planar_fp, const Floorplan &stacked_fp);

    /**
     * @p cancel, when non-null, is checked between control intervals;
     * a fired token aborts the run with a Cancelled throw.
     */
    DtmReport run(const BenchmarkProfile &profile,
                  const CoreConfig &cfg, const std::string &config_name,
                  const DtmOptions &opts,
                  const CancelToken *cancel = nullptr) const;

  private:
    const PowerModel &power_;
    const HotspotModel &hotspot_;
    const Floorplan &planar_;
    const Floorplan &stacked_;
};

} // namespace th

#endif // TH_DTM_ENGINE_H
