/**
 * @file
 * Bit-manipulation helpers used by the width-prediction datapath model.
 */

#ifndef TH_COMMON_BITUTIL_H
#define TH_COMMON_BITUTIL_H

#include <bit>
#include <cstdint>

#include "common/types.h"

namespace th {

/**
 * Number of significant bits in an unsigned value (0 has zero
 * significant bits).
 */
constexpr int
significantBits(std::uint64_t v)
{
    return 64 - std::countl_zero(v);
}

/**
 * Classify a 64-bit value into the paper's low/full width classes.
 *
 * A value is low-width when its upper 48 bits are all zero, i.e. it is
 * representable in the 16 bits stored on the top die. (The wider
 * "trivially encodable" classes used by the data cache are handled by
 * PartialValueCode below.)
 */
constexpr Width
classifyWidth(std::uint64_t v)
{
    return (v >> kBitsPerDie) == 0 ? Width::Low : Width::Full;
}

/**
 * The L1 data cache's 2-bit partial value encoding (Section 3.6).
 *
 * Encodes what the upper 48 bits of a 64-bit word look like so that
 * low-width predicted loads can complete from the top die alone.
 */
enum class PartialValueCode : std::uint8_t {
    UpperZeros = 0, ///< 00: upper 48 bits all zeros.
    UpperOnes = 1,  ///< 01: upper 48 bits all ones (small negatives).
    UpperAddr = 2,  ///< 10: upper bits match the referencing address.
    Explicit = 3    ///< 11: upper bits must be read from the lower dies.
};

/** Mask covering the bits stored on the top die. */
inline constexpr std::uint64_t kTopDieMask = (1ULL << kBitsPerDie) - 1;

/** Mask covering the bits stored on the lower three dies. */
inline constexpr std::uint64_t kUpperMask = ~kTopDieMask;

/**
 * Compute the partial value code for @p value when accessed through
 * address @p ref_addr (Section 3.6).
 */
constexpr PartialValueCode
encodePartialValue(std::uint64_t value, Addr ref_addr)
{
    const std::uint64_t upper = value & kUpperMask;
    if (upper == 0)
        return PartialValueCode::UpperZeros;
    if (upper == kUpperMask)
        return PartialValueCode::UpperOnes;
    if (upper == (ref_addr & kUpperMask))
        return PartialValueCode::UpperAddr;
    return PartialValueCode::Explicit;
}

/**
 * Reconstruct a value from its top-die bits and partial value code.
 * Only valid when the code is not Explicit.
 */
constexpr std::uint64_t
decodePartialValue(std::uint64_t low16, PartialValueCode code,
                   Addr ref_addr)
{
    switch (code) {
      case PartialValueCode::UpperZeros:
        return low16 & kTopDieMask;
      case PartialValueCode::UpperOnes:
        return kUpperMask | (low16 & kTopDieMask);
      case PartialValueCode::UpperAddr:
        return (ref_addr & kUpperMask) | (low16 & kTopDieMask);
      default:
        return low16;
    }
}

/**
 * True when the 2-bit encoding can represent the value without touching
 * the lower three dies.
 */
constexpr bool
isTriviallyEncodable(std::uint64_t value, Addr ref_addr)
{
    return encodePartialValue(value, ref_addr) != PartialValueCode::Explicit;
}

/**
 * Which dies toggle when a value propagates through a
 * significance-partitioned structure: die 0 always toggles; dies 1..3
 * toggle only for full-width values.
 */
constexpr int
activeDies(Width w)
{
    return w == Width::Low ? 1 : kNumDies;
}

/** Integer log2 for exact powers of two. */
constexpr int
log2Exact(std::uint64_t v)
{
    return std::countr_zero(v);
}

/** Round @p v up to the next power of two (v > 0). */
constexpr std::uint64_t
nextPow2(std::uint64_t v)
{
    return std::bit_ceil(v);
}

} // namespace th

#endif // TH_COMMON_BITUTIL_H
