/**
 * @file
 * Lightweight statistics collection, in the spirit of the gem5 stats
 * package: named scalar counters, ratio formulas, and histograms that a
 * simulation object registers and a reporter dumps at the end of a run.
 */

#ifndef TH_COMMON_STATS_H
#define TH_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace th {

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A fixed-bucket histogram over a [lo, hi) range with uniform buckets. */
class Histogram
{
  public:
    Histogram() : Histogram(0.0, 1.0, 10) {}

    /**
     * @param lo       Lower bound of the tracked range.
     * @param hi       Upper bound (samples >= hi land in the last bucket).
     * @param buckets  Number of uniform buckets (>= 1).
     */
    Histogram(double lo, double hi, int buckets);

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double sum() const { return sum_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /**
     * Reconstitute from serialized state (io/serialize). Returns false
     * and leaves the histogram untouched when the state is invalid
     * (empty buckets or hi <= lo).
     */
    bool restore(double lo, double hi,
                 std::vector<std::uint64_t> buckets, std::uint64_t count,
                 double sum, double min, double max);

    /** Fraction of samples in bucket @p i. */
    double fraction(int i) const;

    void reset();

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0, max_ = 0.0;
};

/**
 * Fixed-bucket log-scale latency histogram for service-time metrics
 * (net/metrics.h). Buckets are power-of-two microsecond bins — bucket
 * i counts samples in [2^i, 2^(i+1)) microseconds — so recording is a
 * clz and quantile estimation needs no stored samples. Deliberately
 * wall-clock-free: callers sample durations; this only counts them.
 */
class LatencyHistogram
{
  public:
    /** Number of power-of-two buckets: covers up to ~2^27 us (~134 s). */
    static constexpr int kBuckets = 28;

    /** Record one duration (clamped into the first/last bucket). */
    void sample(std::uint64_t micros);

    std::uint64_t count() const { return count_; }

    /**
     * Upper bound (in microseconds) of the bucket containing the
     * q-quantile sample, q in [0, 1]. 0 when empty. An upper bound is
     * reported (rather than a midpoint) so p99 never understates.
     */
    std::uint64_t quantileUpperBoundUs(double q) const;

    const std::uint64_t *buckets() const { return buckets_; }

    /** Merge @p other into this (for per-thread shards). */
    void merge(const LatencyHistogram &other);

    void reset();

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
};

/**
 * A registry of named statistics owned by simulation components.
 *
 * Components register pointers to their Counter/Histogram members under
 * hierarchical dotted names (e.g. "core.rf.reads_low"). The registry
 * never owns the statistics; registrants must outlive it or deregister.
 */
class StatRegistry
{
  public:
    void registerCounter(const std::string &name, const Counter *c);
    void registerHistogram(const std::string &name, const Histogram *h);

    /** Look up a counter value by name; returns 0 if absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /** True when a counter with this name has been registered. */
    bool hasCounter(const std::string &name) const;

    /** All registered counter names, sorted. */
    std::vector<std::string> counterNames() const;

    /** Dump all statistics in "name value" lines. */
    void dump(std::ostream &os) const;

  private:
    std::map<std::string, const Counter *> counters_;
    std::map<std::string, const Histogram *> histograms_;
};

/** Geometric mean of a vector of positive values; 0 if empty. */
double geomean(const std::vector<double> &vals);

/** Arithmetic mean; 0 if empty. */
double mean(const std::vector<double> &vals);

} // namespace th

#endif // TH_COMMON_STATS_H
