#include "common/rng.h"

#include <cmath>

namespace th {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    // Multiply-shift; bias is negligible for our bounds (<< 2^64).
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(bound));
}

std::int64_t
Rng::rangeInclusive(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
        range(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

int
Rng::runLength(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Geometric with success probability 1/mean, support {1, 2, ...}.
    const double p = 1.0 / mean;
    const double u = uniform();
    const double len = std::log(1.0 - u) / std::log(1.0 - p);
    return 1 + static_cast<int>(len);
}

int
Rng::sampleCdf(const double *cdf, int n)
{
    const double u = uniform();
    for (int i = 0; i < n; ++i) {
        if (u < cdf[i])
            return i;
    }
    return n - 1;
}

double
Rng::gaussian(double mean, double stddev)
{
    // Irwin-Hall with 4 samples: variance 4/12 = 1/3, so scale by
    // sqrt(3) to get unit variance.
    const double sum = uniform() + uniform() + uniform() + uniform();
    const double unit = (sum - 2.0) * 1.7320508075688772;
    return mean + stddev * unit;
}

} // namespace th
