/**
 * @file
 * Cooperative cancellation. A CancelToken is a shared flag a waiter
 * flips when it no longer wants a result (deadline expiry, every
 * single-flight subscriber gone); long-running simulation loops poll
 * it at safe points and unwind with Cancelled.
 *
 * Cancellation never corrupts state: the core checks between cycles,
 * the aborted run produces no CoreResult, and nothing partial is ever
 * cached or persisted (the memo/store writes happen strictly after a
 * run completes).
 */

#ifndef TH_COMMON_CANCEL_H
#define TH_COMMON_CANCEL_H

#include <atomic>
#include <exception>

namespace th {

/** Shared cancellation flag; set() is sticky. */
class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

/** Thrown by simulation loops when their CancelToken fires. */
class Cancelled : public std::exception
{
  public:
    const char *what() const noexcept override
    {
        return "simulation cancelled";
    }
};

} // namespace th

#endif // TH_COMMON_CANCEL_H
