/**
 * @file
 * Minimal fixed-size thread pool for deterministic data parallelism.
 * No work stealing, no futures: one shared atomic index per job, the
 * calling thread participates, and results are always collected in
 * index order, so a parallel run is bit-identical to a serial one for
 * any independent per-index work.
 *
 * The global pool is sized by the TH_THREADS environment variable
 * (default: hardware concurrency). TH_THREADS=1 makes every
 * parallelFor run inline on the calling thread.
 */

#ifndef TH_COMMON_THREADPOOL_H
#define TH_COMMON_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"

namespace th {

class ThreadPool
{
  public:
    /**
     * @param num_threads  Total parallelism including the caller:
     *                     num_threads - 1 workers are spawned.
     *                     Clamped to >= 1.
     */
    explicit ThreadPool(int num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + the calling thread). */
    int threads() const { return static_cast<int>(workers_.size()) + 1; }

    /**
     * Run body(i) for every i in [0, n). Blocks until all indices are
     * done; the calling thread works too. Indices are claimed in
     * chunks from a shared counter; per-index work must be independent
     * (no cross-index data flow). The first exception thrown by any
     * body is rethrown on the caller after the job drains.
     *
     * Calls from inside a pool worker run inline (no nested fan-out),
     * so library code may parallelise freely without deadlock.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Parallel map with deterministic, index-ordered results:
     * out[i] = fn(i), regardless of thread count or scheduling.
     */
    template <typename Fn>
    auto parallelMap(std::size_t n, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        std::vector<std::invoke_result_t<Fn &, std::size_t>> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * The process-wide pool used by the experiment harnesses and the
     * thermal solvers. Sized on first use from TH_THREADS (or
     * hardware concurrency when unset); resizable for the lifetime of
     * the process via setGlobalThreads().
     */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of @p num_threads threads —
     * the bench/test hook behind the "threads" measurement axis
     * (solver determinism is validated by re-running one solve at
     * several pool sizes in a single process). Must only be called
     * while no parallel work is in flight: references previously
     * returned by global() are invalidated.
     */
    static void setGlobalThreads(int num_threads);

    /** Pool size global() will use: TH_THREADS or hardware default. */
    static int configuredThreads();

    /**
     * Parse a TH_THREADS-style value: returns the thread count, or
     * @p fallback when @p text is null/empty/non-numeric/< 1.
     */
    static int parseThreads(const char *text, int fallback);

  private:
    struct Job
    {
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t n = 0;
        std::size_t next = 0;   ///< Next unclaimed index (under mu_).
        std::size_t done = 0;   ///< Completed indices (under mu_).
        std::size_t active = 0; ///< Workers inside the job (under mu_).
        std::size_t chunk = 1;
        std::exception_ptr error;
    };

    void workerLoop();
    /** Claim and run chunks of the current job until it is exhausted. */
    void drainJob(Job &job);

    std::vector<std::thread> workers_;
    Mutex mu_;
    /// _any variants: they wait on the annotated th::UniqueLock.
    // th_lint: guards(job_ != nullptr or stop_, under mu_)
    std::condition_variable_any work_cv_; ///< Workers wait for a job.
    // th_lint: guards(job completion - pending chunk count, under mu_)
    std::condition_variable_any done_cv_; ///< Caller waits for done.
    Job *job_ TH_GUARDED_BY(mu_) = nullptr;           ///< Active job.
    std::uint64_t generation_ TH_GUARDED_BY(mu_) = 0; ///< Bumped per job.
    bool stop_ TH_GUARDED_BY(mu_) = false;
};

} // namespace th

#endif // TH_COMMON_THREADPOOL_H
