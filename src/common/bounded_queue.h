/**
 * @file
 * Bounded multi-producer / multi-consumer task queue — the admission
 * queue of the th_serve front-end (net/server.h). Capacity-capped so a
 * flood of requests turns into explicit rejections (tryPush() == false
 * -> a structured busy reply) instead of unbounded memory growth.
 *
 * Shutdown contract: close() stops new pushes immediately, but pop()
 * keeps draining already-admitted items until the queue is empty —
 * exactly the graceful-drain semantics the server needs on SIGTERM.
 */

#ifndef TH_COMMON_BOUNDED_QUEUE_H
#define TH_COMMON_BOUNDED_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <utility>

#include "common/thread_annotations.h"

namespace th {

template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity  Maximum queued items; 0 is clamped to 1. */
    explicit BoundedQueue(std::size_t capacity)
        : cap_(capacity == 0 ? 1 : capacity)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Non-blocking admission: false when the queue is at capacity or
     * closed. Never waits — backpressure is the caller's to surface.
     */
    bool tryPush(T item)
    {
        {
            LockGuard lock(mu_);
            if (closed_ || items_.size() >= cap_)
                return false;
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
        return true;
    }

    /**
     * Blocking removal. Returns false only when the queue is closed
     * AND drained; items admitted before close() are always delivered.
     */
    bool pop(T &out)
    {
        UniqueLock lock(mu_);
        while (items_.empty() && !closed_)
            cv_.wait(lock);
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** Stop admissions and wake every blocked pop(). Idempotent. */
    void close()
    {
        {
            LockGuard lock(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    /** Instantaneous depth (a gauge for metrics; racy by nature). */
    std::size_t size() const
    {
        LockGuard lock(mu_);
        return items_.size();
    }

    std::size_t capacity() const { return cap_; }

    bool closed() const
    {
        LockGuard lock(mu_);
        return closed_;
    }

  private:
    const std::size_t cap_;
    mutable Mutex mu_;
    /// _any variant: waits on the annotated th::UniqueLock.
    // th_lint: guards(items_ non-empty or closed_, under mu_)
    std::condition_variable_any cv_;
    std::deque<T> items_ TH_GUARDED_BY(mu_);
    bool closed_ TH_GUARDED_BY(mu_) = false;
};

} // namespace th

#endif // TH_COMMON_BOUNDED_QUEUE_H
