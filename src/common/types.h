/**
 * @file
 * Fundamental types shared across the Thermal Herding simulation library.
 */

#ifndef TH_COMMON_TYPES_H
#define TH_COMMON_TYPES_H

#include <cstdint>
#include <string>

namespace th {

/** Simulation cycle count. */
using Cycle = std::uint64_t;

/** Simulated machine address (64-bit, Alpha-like). */
using Addr = std::uint64_t;

/** Architectural or physical register index. */
using RegIndex = std::uint16_t;

/** Number of dies in the 3D stack studied by the paper. */
inline constexpr int kNumDies = 4;

/** Bits of the datapath assigned to each die (significance partition). */
inline constexpr int kBitsPerDie = 16;

/** Full datapath width in bits. */
inline constexpr int kDatapathBits = kNumDies * kBitsPerDie;

/**
 * Broad classes of dynamic instructions in a trace.
 *
 * This matches the functional-unit classes in Table 1 of the paper:
 * 3 ALUs, 2 shifters, 1 integer multiply/complex unit, FP add, FP
 * multiply, FP divide/sqrt, and the two memory ports.
 */
enum class OpClass : std::uint8_t {
    IntAlu,       ///< Simple integer add/sub/logic/compare.
    IntShift,     ///< Shift/rotate.
    IntMult,      ///< Integer multiply or other long-latency complex op.
    FpAdd,        ///< Floating-point add/sub/convert/compare.
    FpMult,       ///< Floating-point multiply.
    FpDiv,        ///< Floating-point divide or square root.
    Load,         ///< Memory read.
    Store,        ///< Memory write.
    Branch,       ///< Conditional direct branch.
    Jump,         ///< Unconditional direct jump or call.
    IndirectJump, ///< Register-indirect jump or return.
    Nop,          ///< No-operation (still occupies fetch/decode slots).
    NumOpClasses
};

/** Return a human-readable name for an op class. */
const char *opClassName(OpClass op);

/** True for Load and Store op classes. */
constexpr bool
isMemOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

/** True for any control-transfer op class. */
constexpr bool
isControlOp(OpClass op)
{
    return op == OpClass::Branch || op == OpClass::Jump ||
           op == OpClass::IndirectJump;
}

/** True for the floating-point op classes. */
constexpr bool
isFpOp(OpClass op)
{
    return op == OpClass::FpAdd || op == OpClass::FpMult ||
           op == OpClass::FpDiv;
}

/**
 * Value significance class as seen by the Thermal Herding datapath.
 *
 * Low means the value is representable in the top die's 16 bits
 * (upper 48 bits all zero); Full means at least one of the upper 48
 * bits differs from the trivial encodings.
 */
enum class Width : std::uint8_t {
    Low,  ///< <= 16 significant bits; only the top die is active.
    Full  ///< > 16 significant bits; all four dies are active.
};

/** Return "low" or "full". */
const char *widthName(Width w);

} // namespace th

#endif // TH_COMMON_TYPES_H
