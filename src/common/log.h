/**
 * @file
 * Minimal logging / error facilities in the gem5 style: panic() for
 * internal invariant violations, fatal() for user errors, warn() and
 * inform() for status.
 */

#ifndef TH_COMMON_LOG_H
#define TH_COMMON_LOG_H

#include <cstdarg>
#include <cstdint>
#include <string>

namespace th {

/** Verbosity levels for inform()/warn() output. */
enum class LogLevel : std::uint8_t { Silent, Error, Warn, Info, Debug };

/** Set the global log verbosity. Default: Warn. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal simulator bug and abort. Use when a condition can
 * only arise from a defect in this library, never from user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable modelling or configuration. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level message (only with LogLevel::Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace th

#endif // TH_COMMON_LOG_H
