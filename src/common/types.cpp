#include "common/types.h"

namespace th {

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:       return "IntAlu";
      case OpClass::IntShift:     return "IntShift";
      case OpClass::IntMult:      return "IntMult";
      case OpClass::FpAdd:        return "FpAdd";
      case OpClass::FpMult:       return "FpMult";
      case OpClass::FpDiv:        return "FpDiv";
      case OpClass::Load:         return "Load";
      case OpClass::Store:        return "Store";
      case OpClass::Branch:       return "Branch";
      case OpClass::Jump:         return "Jump";
      case OpClass::IndirectJump: return "IndirectJump";
      case OpClass::Nop:          return "Nop";
      default:                    return "Unknown";
    }
}

const char *
widthName(Width w)
{
    return w == Width::Low ? "low" : "full";
}

} // namespace th
