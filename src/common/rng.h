/**
 * @file
 * Deterministic pseudo-random number generation for synthetic trace
 * generation. xoshiro256** — fast, high quality, and reproducible across
 * platforms (unlike std::default_random_engine).
 */

#ifndef TH_COMMON_RNG_H
#define TH_COMMON_RNG_H

#include <cstdint>

namespace th {

/**
 * xoshiro256** PRNG with splitmix64 seeding.
 *
 * All synthetic workload generation derives from this generator so a
 * (suite, benchmark, seed) triple always produces the same trace.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit sample. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t rangeInclusive(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /**
     * Sample a geometric-ish run length with mean @p mean (>= 1).
     * Used for burst lengths in branch/value-width processes.
     */
    int runLength(double mean);

    /**
     * Sample from a discrete distribution given cumulative weights.
     * @param cdf Array of cumulative probabilities ending at 1.0.
     * @param n   Number of entries.
     * @return Index in [0, n).
     */
    int sampleCdf(const double *cdf, int n);

    /** Approximately normal sample (Irwin-Hall of 4) scaled/shifted. */
    double gaussian(double mean, double stddev);

  private:
    std::uint64_t s_[4];
};

} // namespace th

#endif // TH_COMMON_RNG_H
