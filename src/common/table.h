/**
 * @file
 * ASCII table formatting used by the benchmark harnesses to print
 * paper-style tables and figure series.
 */

#ifndef TH_COMMON_TABLE_H
#define TH_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace th {

/**
 * A simple column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"Block", "2D (ps)", "3D (ps)", "Improvement"});
 *   t.addRow({"Scheduler", "376", "255", "32.2%"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a separator under the header. */
    void print(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals decimal places. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a ratio as a percentage string, e.g. 0.479 -> "47.9%". */
std::string fmtPercent(double ratio, int decimals = 1);

} // namespace th

#endif // TH_COMMON_TABLE_H
