#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/log.h"

namespace th {

namespace {

/** True on threads owned by a pool: nested parallelFor runs inline. */
thread_local bool t_in_worker = false;

/** The replaceable global pool (see ThreadPool::setGlobalThreads).
 *  The mutex only guards the slot, not the pool's own work. */
Mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool TH_GUARDED_BY(g_global_mu);

} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    const int total = std::max(1, num_threads);
    workers_.reserve(static_cast<size_t>(total - 1));
    for (int i = 0; i < total - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        LockGuard lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    t_in_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        {
            // Explicit wait loop (not the predicate overload): the
            // thread-safety analysis cannot see that a predicate lambda
            // runs with mu_ held, whereas these reads visibly do.
            UniqueLock lock(mu_);
            while (!stop_ && !(job_ != nullptr && generation_ != seen))
                work_cv_.wait(lock);
            if (stop_)
                return;
            seen = generation_;
            job = job_;
            ++job->active;
        }
        drainJob(*job);
        bool finished;
        {
            LockGuard lock(mu_);
            --job->active;
            finished = job->done == job->n && job->active == 0;
        }
        if (finished)
            done_cv_.notify_all();
    }
}

void
ThreadPool::drainJob(Job &job)
{
    for (;;) {
        std::size_t begin, end;
        {
            LockGuard lock(mu_);
            if (job.next >= job.n)
                return;
            begin = job.next;
            end = std::min(job.n, begin + job.chunk);
            job.next = end;
        }
        for (std::size_t i = begin; i < end; ++i) {
            try {
                (*job.body)(i);
            } catch (...) {
                LockGuard lock(mu_);
                if (!job.error)
                    job.error = std::current_exception();
            }
        }
        bool finished;
        {
            LockGuard lock(mu_);
            job.done += end - begin;
            finished = job.done == job.n && job.active == 0;
        }
        if (finished)
            done_cv_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    // Inline paths: tiny jobs, a serial pool, or a nested call from a
    // worker thread (fanning out again would just queue behind
    // ourselves). Inline execution is index-ordered and therefore
    // trivially deterministic.
    if (n == 1 || workers_.empty() || t_in_worker) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    Job job;
    job.body = &body;
    job.n = n;
    job.chunk = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(threads()) * 4));
    {
        LockGuard lock(mu_);
        job_ = &job;
        ++generation_;
    }
    work_cv_.notify_all();

    drainJob(job);

    {
        UniqueLock lock(mu_);
        while (!(job.done == job.n && job.active == 0))
            done_cv_.wait(lock);
        job_ = nullptr;
    }
    if (job.error)
        std::rethrow_exception(job.error);
}

int
ThreadPool::parseThreads(const char *text, int fallback)
{
    if (text == nullptr || *text == '\0')
        return fallback;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 1 || v > 1024) {
        // Warn (once: repeat lookups would spam) instead of silently
        // ignoring the setting — a typo'd TH_THREADS used to leave the
        // pool at hardware concurrency with no hint why.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("ignoring invalid TH_THREADS='%s' (want 1..1024); "
                 "using %d threads", text, fallback);
        return fallback;
    }
    return static_cast<int>(v);
}

int
ThreadPool::configuredThreads()
{
    const int hw = std::max(
        1, static_cast<int>(std::thread::hardware_concurrency()));
    // Read once, before any worker exists; no concurrent setenv here.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    return parseThreads(std::getenv("TH_THREADS"), hw);
}

ThreadPool &
ThreadPool::global()
{
    LockGuard lock(g_global_mu);
    if (!g_global_pool)
        g_global_pool =
            std::make_unique<ThreadPool>(configuredThreads());
    return *g_global_pool;
}

void
ThreadPool::setGlobalThreads(int num_threads)
{
    // Construct outside the lock (the ctor spawns workers) and join
    // the old pool's workers after releasing it.
    auto fresh = std::make_unique<ThreadPool>(num_threads);
    std::unique_ptr<ThreadPool> old;
    {
        LockGuard lock(g_global_mu);
        old = std::move(g_global_pool);
        g_global_pool = std::move(fresh);
    }
}

} // namespace th
