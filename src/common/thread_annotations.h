/**
 * @file
 * Clang thread-safety annotations and annotated locking primitives.
 *
 * The macros map to clang's `-Wthread-safety` capability attributes and
 * compile to nothing elsewhere, so gcc builds are unaffected while every
 * clang build (local and CI) statically proves that guarded members are
 * only touched with their mutex held.
 *
 * libstdc++'s std::mutex carries no capability attributes, so the
 * analysis cannot see std::lock_guard acquisitions. th::Mutex /
 * th::LockGuard / th::UniqueLock are thin annotated wrappers that make
 * acquisitions visible to the checker; use them for any mutex whose
 * guarded data should be machine-checked (tools/th_lint enforces that
 * every mutex member carries an annotated data set).
 */

#ifndef TH_COMMON_THREAD_ANNOTATIONS_H
#define TH_COMMON_THREAD_ANNOTATIONS_H

#include <mutex>

#if defined(__clang__)
#define TH_THREAD_ATTR(x) __attribute__((x))
#else
#define TH_THREAD_ATTR(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define TH_CAPABILITY(x) TH_THREAD_ATTR(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define TH_SCOPED_CAPABILITY TH_THREAD_ATTR(scoped_lockable)

/** Member may only be read/written while holding the given mutex. */
#define TH_GUARDED_BY(x) TH_THREAD_ATTR(guarded_by(x))

/** Pointee may only be dereferenced while holding the given mutex. */
#define TH_PT_GUARDED_BY(x) TH_THREAD_ATTR(pt_guarded_by(x))

/** Function requires the listed mutexes to be held by the caller. */
#define TH_REQUIRES(...) TH_THREAD_ATTR(requires_capability(__VA_ARGS__))

/** Function acquires the listed mutexes (no args: `this`). */
#define TH_ACQUIRE(...) TH_THREAD_ATTR(acquire_capability(__VA_ARGS__))

/** Function releases the listed mutexes (no args: `this`). */
#define TH_RELEASE(...) TH_THREAD_ATTR(release_capability(__VA_ARGS__))

/** Function acquires the mutex iff it returns the given value. */
#define TH_TRY_ACQUIRE(...) TH_THREAD_ATTR(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed mutexes (deadlock prevention). */
#define TH_EXCLUDES(...) TH_THREAD_ATTR(locks_excluded(__VA_ARGS__))

/** Escape hatch: disable the analysis for one function. */
#define TH_NO_THREAD_SAFETY_ANALYSIS TH_THREAD_ATTR(no_thread_safety_analysis)

namespace th {

/** std::mutex with capability attributes the analysis can track. */
class TH_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() TH_ACQUIRE() { mu_.lock(); }
    void unlock() TH_RELEASE() { mu_.unlock(); }
    bool try_lock() TH_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_; // th_lint: excluded(implementation of the annotated wrapper itself)
};

/** std::lock_guard equivalent over th::Mutex. */
class TH_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu) TH_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~LockGuard() TH_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Relockable scoped lock for condition waits: satisfies BasicLockable,
 * so std::condition_variable_any can release/reacquire it inside
 * wait(). The analysis treats a wait as lock-neutral (held before and
 * after), which matches what callers may assume.
 */
class TH_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) TH_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~UniqueLock() TH_RELEASE() { mu_.unlock(); }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    void lock() TH_ACQUIRE() { mu_.lock(); }
    void unlock() TH_RELEASE() { mu_.unlock(); }

  private:
    Mutex &mu_;
};

} // namespace th

#endif // TH_COMMON_THREAD_ANNOTATIONS_H
