#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace th {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

void
vprint(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n <= 0)
        return {};
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint("fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint("warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint("info: ", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint("debug: ", fmt, ap);
    va_end(ap);
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace th
