#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace th {

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), buckets_(static_cast<size_t>(std::max(1, buckets)), 0)
{
    if (hi <= lo)
        panic("Histogram range must be non-empty (lo=%f hi=%f)", lo, hi);
}

void
Histogram::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;

    const double t = (v - lo_) / (hi_ - lo_);
    int idx = static_cast<int>(t * static_cast<double>(buckets_.size()));
    idx = std::clamp(idx, 0, static_cast<int>(buckets_.size()) - 1);
    ++buckets_[static_cast<size_t>(idx)];
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Histogram::fraction(int i) const
{
    if (count_ == 0 || i < 0 || i >= static_cast<int>(buckets_.size()))
        return 0.0;
    return static_cast<double>(buckets_[static_cast<size_t>(i)]) /
           static_cast<double>(count_);
}

bool
Histogram::restore(double lo, double hi,
                   std::vector<std::uint64_t> buckets,
                   std::uint64_t count, double sum, double min,
                   double max)
{
    if (buckets.empty() || !(hi > lo))
        return false;
    lo_ = lo;
    hi_ = hi;
    buckets_ = std::move(buckets);
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
    return true;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0.0;
}

void
LatencyHistogram::sample(std::uint64_t micros)
{
    int idx = 0;
    while (idx < kBuckets - 1 && micros >= (1ULL << (idx + 1)))
        ++idx;
    ++buckets_[idx];
    ++count_;
}

std::uint64_t
LatencyHistogram::quantileUpperBoundUs(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-quantile sample, 1-based; ceil so p100 = last.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return 1ULL << (i + 1);
    }
    return 1ULL << kBuckets;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (int i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_, buckets_ + kBuckets, 0);
    count_ = 0;
}

void
StatRegistry::registerCounter(const std::string &name, const Counter *c)
{
    counters_[name] = c;
}

void
StatRegistry::registerHistogram(const std::string &name, const Histogram *h)
{
    histograms_[name] = h;
}

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

bool
StatRegistry::hasCounter(const std::string &name) const
{
    return counters_.count(name) > 0;
}

std::vector<std::string>
StatRegistry::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &kv : counters_)
        names.push_back(kv.first);
    return names;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << kv.first << " " << kv.second->value() << "\n";
    for (const auto &kv : histograms_) {
        os << kv.first << ".count " << kv.second->count() << "\n";
        os << kv.first << ".mean " << kv.second->mean() << "\n";
    }
}

double
geomean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : vals)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(vals.size()));
}

double
mean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : vals)
        sum += v;
    return sum / static_cast<double>(vals.size());
}

} // namespace th
