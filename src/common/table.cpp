#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/log.h"

namespace th {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table row arity %zu != header arity %zu",
              cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << "\n";
    };

    print_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtPercent(double ratio, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
    return buf;
}

} // namespace th
