/**
 * @file
 * Build identification, stamped at configure time (src/common/
 * version.cpp.in -> CMake configure_file). Surfaced by `th_run
 * --version` and echoed by both sides of the th_serve handshake so a
 * client/server build mismatch is visible in one ping instead of
 * surfacing as a mysterious table diff.
 */

#ifndef TH_COMMON_VERSION_H
#define TH_COMMON_VERSION_H

namespace th {

/** Semantic library version, e.g. "0.5.0". */
const char *versionString();

/** `git describe --always --dirty` at configure time, or "unknown". */
const char *gitDescribe();

/** One-line build identification: "thermal-herding <ver> (<git>)". */
const char *buildInfo();

} // namespace th

#endif // TH_COMMON_VERSION_H
