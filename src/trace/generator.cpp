#include "trace/generator.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/log.h"

namespace th {

namespace {

/** Architectural register counts: 0..31 integer, 32..63 floating point. */
constexpr RegIndex kNumIntRegs = 32;
constexpr RegIndex kFpRegBase = 32;

/** Hash used by the pointer-chase address stream. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

SyntheticTrace::SyntheticTrace(const BenchmarkProfile &profile)
    : profile_(profile), rng_(profile.seed)
{
    if (profile_.numKernels < 1 || profile_.kernelSize < 4)
        fatal("Benchmark profile '%s' needs >=1 kernel of >=4 insts",
              profile_.name.c_str());
    buildProgram();
    reset();
}

void
SyntheticTrace::reset()
{
    // Re-seed so the dynamic stream is reproducible run-to-run.
    rng_ = Rng(profile_.seed ^ 0xd1eC0DEULL);
    cur_kernel_ = 0;
    cur_idx_ = 0;
    loop_trips_left_ = std::max(1, rng_.runLength(profile_.loopTripMean));

    size_t total_static = 0;
    for (const auto &k : kernels_)
        total_static += k.insts.size();
    reg_values_.assign(64, 0);
    // Random per-site phases so strided sites spread over their
    // working sets instead of all walking up from offset zero.
    mem_counters_.assign(total_static, 0);
    for (auto &c : mem_counters_)
        c = rng_.next() & 0xfffff;
    chase_ptrs_.assign(total_static, kHeapBase);
    for (auto &cp : chase_ptrs_)
        cp = kHeapBase + (rng_.next() & 0xfffff8);
    indirect_rr_.assign(total_static, 0);
}

OpClass
SyntheticTrace::sampleOpClass()
{
    const BenchmarkProfile &p = profile_;
    double cdf[11];
    double acc = 0.0;
    int i = 0;
    auto push = [&](double f) { acc += f; cdf[i++] = acc; };
    push(p.fShift);
    push(p.fMult);
    push(p.fFpAdd);
    push(p.fFpMult);
    push(p.fFpDiv);
    push(p.fLoad);
    push(p.fStore);
    push(p.fBranch);
    push(p.fJump);
    push(p.fIndirect);
    push(p.fNop);

    static const OpClass classes[11] = {
        OpClass::IntShift, OpClass::IntMult, OpClass::FpAdd,
        OpClass::FpMult, OpClass::FpDiv, OpClass::Load, OpClass::Store,
        OpClass::Branch, OpClass::Jump, OpClass::IndirectJump,
        OpClass::Nop,
    };

    const double u = rng_.uniform();
    for (int j = 0; j < 11; ++j)
        if (u < cdf[j])
            return classes[j];
    return OpClass::IntAlu;
}

SyntheticTrace::Kernel
SyntheticTrace::buildKernel(int index, Addr base_pc)
{
    const BenchmarkProfile &p = profile_;
    Kernel kernel;
    kernel.insts.resize(static_cast<size_t>(p.kernelSize));

    // Recent destinations (register, low-width-site flag) for
    // dependency-distance sampling.
    struct RecentDst { RegIndex reg; bool lowSite; };
    std::vector<RecentDst> recent_int;
    std::vector<RecentDst> recent_fp;

    for (int i = 0; i < p.kernelSize; ++i) {
        StaticInst &si = kernel.insts[static_cast<size_t>(i)];
        si.pc = base_pc + static_cast<Addr>(i) * 4;

        const bool is_last = (i == p.kernelSize - 1);
        si.op = is_last ? OpClass::Branch : sampleOpClass();
        // Restrict inter-kernel jumps to the last quarter of a kernel:
        // a jump early in one kernel targeting a jump early in another
        // would ping-pong between kernel prologues and starve the
        // kernel bodies out of the dynamic stream.
        if ((si.op == OpClass::Jump || si.op == OpClass::IndirectJump) &&
            i < (3 * p.kernelSize) / 4) {
            si.op = OpClass::IntAlu;
        }
        const bool fp = isFpOp(si.op);

        // Decide the site's width bias before operand selection so
        // low-width sites can prefer low-width producers — real code
        // correlates operand and result widths (a 16-bit dataflow
        // stays 16-bit), which is what makes one prediction per
        // instruction cover both (Section 3).
        const bool low_site = !fp && rng_.chance(p.lowWidthBias);
        si.lowWidthProb = low_site ? 1.0 - p.widthNoise : p.widthNoise;

        // Source operands: recently written registers at a geometric
        // dependency distance, preferring width-compatible producers.
        auto pick_src = [&](bool fp_src, bool want_low) -> RegIndex {
            const auto &recent = fp_src ? recent_fp : recent_int;
            if (!recent.empty() && rng_.chance(0.75)) {
                int d = rng_.runLength(p.depDistMean);
                d = std::min<int>(d, static_cast<int>(recent.size()));
                const size_t start = recent.size() - static_cast<size_t>(d);
                // Search outwards from the sampled distance for a
                // width-compatible producer.
                for (size_t off = 0; off < recent.size(); ++off) {
                    const size_t lo = start >= off ? start - off : 0;
                    if (recent[lo].lowSite == want_low &&
                        rng_.chance(0.85))
                        return recent[lo].reg;
                }
                return recent[start].reg;
            }
            const RegIndex base = fp_src ? kFpRegBase : 0;
            return base +
                static_cast<RegIndex>(rng_.range(kNumIntRegs));
        };
        switch (si.op) {
          case OpClass::Nop:
            break;
          case OpClass::Load:
            si.numSrcs = 1; // address base register: full width
            si.srcRegs[0] = pick_src(false, false);
            si.hasDst = true;
            // Some loads feed the FP pipeline (matters for the extra
            // FP-load forwarding cycle the 3D floorplan removes).
            si.dstReg = (p.fFpAdd + p.fFpMult > 0.05 && rng_.chance(0.4))
                ? kFpRegBase + static_cast<RegIndex>(rng_.range(kNumIntRegs))
                : static_cast<RegIndex>(rng_.range(kNumIntRegs));
            break;
          case OpClass::Store:
            si.numSrcs = 2; // address base (full) + data
            si.srcRegs[0] = pick_src(false, false);
            si.srcRegs[1] = pick_src(fp, low_site);
            break;
          case OpClass::Branch:
            si.numSrcs = 1;
            si.srcRegs[0] = pick_src(false, low_site);
            break;
          case OpClass::Jump:
          case OpClass::IndirectJump:
            si.numSrcs = si.op == OpClass::IndirectJump ? 1 : 0;
            if (si.numSrcs)
                si.srcRegs[0] = pick_src(false, false);
            break;
          default: // ALU-class producers
            si.numSrcs = rng_.chance(0.8) ? 2 : 1;
            for (int s = 0; s < si.numSrcs; ++s)
                si.srcRegs[s] = pick_src(fp, low_site);
            si.hasDst = true;
            si.dstReg = (fp ? kFpRegBase : 0) +
                static_cast<RegIndex>(rng_.range(kNumIntRegs));
            break;
        }

        if (fp || (si.hasDst && si.dstReg >= kFpRegBase))
            si.lowWidthProb = 0.0; // FP values are full width

        if (si.hasDst) {
            auto &recent = si.dstReg >= kFpRegBase ? recent_fp : recent_int;
            recent.push_back(RecentDst{si.dstReg,
                                       si.lowWidthProb > 0.5});
            if (recent.size() > 16)
                recent.erase(recent.begin());
        }

        // Full-width value shape is a per-site property too.
        {
            const double u = rng_.uniform();
            if (u < p.loadUpperOnes)
                si.fullValueClass = 1;
            else if (u < p.loadUpperOnes + p.loadUpperAddr)
                si.fullValueClass = 2;
            else
                si.fullValueClass = 3;
        }

        // Branch structure.
        if (si.op == OpClass::Branch) {
            if (is_last) {
                si.isLoopBranch = true;
                si.takenBias = 1.0;
                si.targetIdx = 0;
            } else if (rng_.chance(p.branchNoise /
                       std::max(p.fBranch, 1e-9))) {
                // Data-dependent branch the predictors struggle with
                // (~25% mispredict rate on these sites). Skips exactly
                // one instruction so the dynamic op mix stays close to
                // the sampled static mix.
                si.takenBias = rng_.chance(0.5) ? 0.75 : 0.25;
                si.targetIdx = std::min(p.kernelSize - 1, i + 2);
            } else {
                // Predictable if-then skip: mostly not-taken (the
                // taken rate of the stream comes from loop-back
                // branches and jumps, which skip nothing).
                si.takenBias = rng_.chance(0.3) ? 0.97 : 0.03;
                si.targetIdx = std::min(p.kernelSize - 1, i + 2);
            }
        } else if (si.op == OpClass::Jump) {
            si.jumpKernel = static_cast<int>(
                rng_.range(static_cast<std::uint64_t>(p.numKernels)));
        } else if (si.op == OpClass::IndirectJump) {
            const int n = std::max(1,
                rng_.runLength(p.indirectTargets));
            for (int t = 0; t < std::min(n, 6); ++t)
                si.indirectKernels.push_back(static_cast<int>(
                    rng_.range(static_cast<std::uint64_t>(p.numKernels))));
        }

        // Memory behaviour: region here; working-set class assigned
        // stratified over the whole program (see assignMemorySets) to
        // keep the dynamic hot/warm/cold mix close to the profile.
        if (si.op == OpClass::Load || si.op == OpClass::Store) {
            const double u = rng_.uniform();
            if (u < p.stackFrac)
                si.memRegion = 0;
            else if (u < p.stackFrac + p.heapFrac)
                si.memRegion = 1;
            else
                si.memRegion = 2;
            si.memSet = 0;

            si.pointerChase = si.memRegion == 1 &&
                si.op == OpClass::Load &&
                rng_.chance(p.pointerChaseFrac);
            if (si.pointerChase) {
                // Linked-structure traversal: the load's address comes
                // from its own previous result (r = load [r]), so
                // successive accesses serialise in the pipeline — the
                // behaviour that makes mcf DRAM-latency-bound.
                si.dstReg = static_cast<RegIndex>(rng_.range(kNumIntRegs));
                si.srcRegs[0] = si.dstReg;
                si.lowWidthProb = 0.0;  // pointers are full width
                si.fullValueClass = 2;  // upper bits match the region
            }
            static const std::uint64_t strides[4] = {8, 8, 16, 64};
            si.stride = strides[rng_.range(4)];
        }
        (void)index;
    }

    kernel.loopBranchIdx = p.kernelSize - 1;
    return kernel;
}

void
SyntheticTrace::buildProgram()
{
    kernels_.clear();
    kernels_.reserve(static_cast<size_t>(profile_.numKernels));
    for (int k = 0; k < profile_.numKernels; ++k) {
        const Addr base = kTextBase +
            static_cast<Addr>(k) *
            static_cast<Addr>(profile_.kernelSize) * 4 +
            static_cast<Addr>(k) * 64; // gap between kernels
        kernels_.push_back(buildKernel(k, base));
    }
    assignMemorySets();
}

void
SyntheticTrace::assignMemorySets()
{
    // Collect non-stack memory sites (stack accesses are hot by
    // construction) and deal working-set classes out in exact
    // proportion: per-site sampling would let a single unlucky cold
    // site in a hot loop dominate the DRAM traffic.
    std::vector<StaticInst *> sites;
    for (auto &kernel : kernels_)
        for (auto &si : kernel.insts)
            if ((si.op == OpClass::Load || si.op == OpClass::Store) &&
                si.memRegion != 0)
                sites.push_back(&si);
    if (sites.empty())
        return;

    // Fisher-Yates shuffle with the build RNG (deterministic).
    for (size_t i = sites.size() - 1; i > 0; --i) {
        const size_t j = rng_.range(i + 1);
        std::swap(sites[i], sites[j]);
    }
    // Pointer-chase sites take the large cache-hostile working sets
    // first: linked structures are the big data structures (patricia's
    // L2-resident trie; mcf's DRAM-resident graph). For benchmarks
    // with only incidental DRAM traffic (coldFrac < 5%), the cold set
    // goes to strided sites instead — sparse strided misses overlap
    // under MLP the way array codes do.
    std::stable_partition(sites.begin(), sites.end(),
                          [](const StaticInst *si) {
                              return si->pointerChase;
                          });

    const double non_stack = std::max(1e-9, 1.0 - profile_.stackFrac);
    const auto n = static_cast<double>(sites.size());
    const size_t n_cold = static_cast<size_t>(
        std::lround(profile_.coldFrac / non_stack * n));
    const size_t n_warm = static_cast<size_t>(
        std::lround(profile_.warmFrac / non_stack * n));
    // Dedicated cold sites only for deep-memory benchmarks; smaller
    // DRAM components are scattered per-access in nextMemAddr.
    const bool dedicated_cold = profile_.coldFrac >= 0.05;

    size_t assigned_cold = 0;
    if (dedicated_cold) {
        for (size_t i = 0; i < sites.size() && assigned_cold < n_cold; ++i)
            if (sites[i]->memSet == 0) {
                sites[i]->memSet = 2;
                ++assigned_cold;
            }
    }
    size_t assigned_warm = 0;
    for (size_t i = 0; i < sites.size() && assigned_warm < n_warm; ++i) {
        if (sites[i]->memSet == 0) {
            sites[i]->memSet = 1;
            ++assigned_warm;
        }
    }
}

std::uint64_t
SyntheticTrace::sampleValue(const StaticInst &si, bool &is_low)
{
    is_low = rng_.chance(si.lowWidthProb);
    if (is_low)
        return rng_.next() & kTopDieMask;

    // Full-width value shaped by the site's value class with a little
    // per-instance noise.
    int cls = si.fullValueClass;
    if (rng_.chance(profile_.widthNoise))
        cls = 1 + static_cast<int>(rng_.range(3));
    switch (cls) {
      case 1: // small negative: upper 48 bits all ones
        return kUpperMask | (rng_.next() & kTopDieMask);
      case 2: // pointer to a nearby heap object
        return kHeapBase | (rng_.next() & 0xffffffULL);
      default: // arbitrary wide value
        return (rng_.next() & 0x0000ffffffffffffULL) |
               (1ULL << 40); // guarantee full width
    }
}

Addr
SyntheticTrace::nextMemAddr(const StaticInst &si, int static_id)
{
    Addr base;
    std::uint64_t set_bytes;
    switch (si.memSet) {
      case 0: set_bytes = profile_.hotBytes; break;
      case 1: set_bytes = profile_.warmBytes; break;
      default: set_bytes = profile_.coldBytes; break;
    }
    switch (si.memRegion) {
      case 0: base = kStackBase; break;
      case 1: base = kHeapBase; break;
      default: base = kGlobalBase; break;
    }

    const auto id = static_cast<size_t>(static_id);

    // Small DRAM components (coldFrac < 5%) are scattered: any
    // non-cold site occasionally touches a random cold line. This
    // keeps the dynamic cold fraction exact — dedicating whole sites
    // would make the traffic hostage to how hot those sites' loops
    // happen to be — and models the sparse, MLP-friendly misses of
    // mostly-resident codes.
    if (si.memSet != 2 && !si.pointerChase &&
        profile_.coldFrac > 0.0 && profile_.coldFrac < 0.05 &&
        rng_.chance(profile_.coldFrac)) {
        return kHeapBase + (rng_.next() % profile_.coldBytes & ~7ULL);
    }

    if (si.pointerChase) {
        // Linked-list traversal: nodes laid out in a pseudo-random
        // permutation of the working set; each traversal visits every
        // node once, then restarts. (A naive x -> hash(x) chain would
        // fall into a short rho-cycle and shrink the set.)
        const std::uint64_t lines =
            std::max<std::uint64_t>(1, set_bytes / 64);
        const std::uint64_t idx = mem_counters_[id]++ % lines;
        const std::uint64_t salt =
            static_cast<std::uint64_t>(static_id) << 32;
        return base + (mix64(salt + idx) % set_bytes & ~7ULL);
    }
    const std::uint64_t count = mem_counters_[id]++;
    return base + (count * si.stride) % std::max<std::uint64_t>(8, set_bytes);
}

void
SyntheticTrace::fillDynamic(const StaticInst &si, TraceRecord &rec)
{
    rec = TraceRecord{};
    rec.pc = si.pc;
    rec.op = si.op;
    rec.numSrcs = si.numSrcs;
    rec.hasDst = si.hasDst;
    rec.dstReg = si.dstReg;
    for (int s = 0; s < si.numSrcs; ++s) {
        rec.srcRegs[s] = si.srcRegs[s];
        rec.srcValues[s] = reg_values_[si.srcRegs[s]];
    }

    // Compute the static index of this instruction for per-site state.
    int static_id = 0;
    for (int k = 0; k < cur_kernel_; ++k)
        static_id += static_cast<int>(kernels_[static_cast<size_t>(k)]
                                          .insts.size());
    static_id += cur_idx_;

    if (rec.isMem()) {
        rec.effAddr = nextMemAddr(si, static_id);
        rec.memSize = 8;
    }

    if (si.hasDst || si.op == OpClass::Store) {
        bool is_low = false;
        std::uint64_t v = sampleValue(si, is_low);
        if (isMemOp(si.op) && !is_low && si.fullValueClass == 2) {
            // Pointer-like memory data: the upper bits match the
            // referencing address (nearby heap objects), which the
            // D-cache's code-10 encoding captures (Section 3.6).
            v = (rec.effAddr & kUpperMask) | (v & kTopDieMask);
        }
        rec.resultValue = v;
        if (si.hasDst)
            reg_values_[si.dstReg] = v;
    }

    if (si.op == OpClass::Branch) {
        bool taken;
        if (si.isLoopBranch) {
            taken = loop_trips_left_ > 0;
        } else {
            taken = rng_.chance(si.takenBias);
        }
        rec.taken = taken;
        const auto &kernel = kernels_[static_cast<size_t>(cur_kernel_)];
        const int tgt = si.isLoopBranch ? 0 : si.targetIdx;
        rec.target = kernel.insts[static_cast<size_t>(tgt)].pc;
    } else if (si.op == OpClass::Jump) {
        rec.taken = true;
        rec.target =
            kernels_[static_cast<size_t>(si.jumpKernel)].insts[0].pc;
    } else if (si.op == OpClass::IndirectJump) {
        rec.taken = true;
        const auto id = static_cast<size_t>(static_id);
        const auto &tgts = si.indirectKernels;
        int pick = 0;
        if (!tgts.empty()) {
            // Mostly cyclic with occasional surprise, so the BTB gets
            // a realistic indirect-misprediction rate.
            pick = indirect_rr_[id] % static_cast<int>(tgts.size());
            if (rng_.chance(0.2))
                pick = static_cast<int>(rng_.range(tgts.size()));
            indirect_rr_[id]++;
        }
        const int k = tgts.empty() ? 0 : tgts[static_cast<size_t>(pick)];
        rec.target = kernels_[static_cast<size_t>(k)].insts[0].pc;
    }
}

void
SyntheticTrace::advanceControl(const StaticInst &si, const TraceRecord &rec)
{
    const auto &kernel = kernels_[static_cast<size_t>(cur_kernel_)];

    if (si.op == OpClass::Branch) {
        if (si.isLoopBranch) {
            if (rec.taken) {
                --loop_trips_left_;
                cur_idx_ = 0;
            } else {
                // Loop done: fall through to the next kernel.
                cur_kernel_ = (cur_kernel_ + 1) % profile_.numKernels;
                cur_idx_ = 0;
                loop_trips_left_ =
                    std::max(1, rng_.runLength(profile_.loopTripMean));
            }
        } else if (rec.taken) {
            cur_idx_ = si.targetIdx;
        } else {
            ++cur_idx_;
        }
        return;
    }

    if (si.op == OpClass::Jump || si.op == OpClass::IndirectJump) {
        // Find the kernel whose first PC matches the target.
        for (int k = 0; k < profile_.numKernels; ++k) {
            if (kernels_[static_cast<size_t>(k)].insts[0].pc ==
                rec.target) {
                cur_kernel_ = k;
                break;
            }
        }
        cur_idx_ = 0;
        loop_trips_left_ =
            std::max(1, rng_.runLength(profile_.loopTripMean));
        return;
    }

    ++cur_idx_;
    if (cur_idx_ >= static_cast<int>(kernel.insts.size())) {
        // Shouldn't happen (kernels end with the loop branch), but be
        // safe: wrap to the next kernel.
        cur_kernel_ = (cur_kernel_ + 1) % profile_.numKernels;
        cur_idx_ = 0;
    }
}

void
SyntheticTrace::prefillLines(std::vector<PrefillLine> &lines) const
{
    // Hot sets are L1-resident in steady state; warm sets L2-resident.
    // Cold sets are DRAM traffic by design and are not prefilled.
    const Addr bases[3] = {kStackBase, kHeapBase, kGlobalBase};
    for (Addr base : bases) {
        for (std::uint64_t off = 0; off < profile_.hotBytes; off += 64)
            lines.push_back(PrefillLine{base + off, true});
    }
    // Stack never holds warm sites (see assignMemorySets).
    const Addr warm_bases[2] = {kHeapBase, kGlobalBase};
    for (Addr base : warm_bases) {
        for (std::uint64_t off = profile_.hotBytes;
             off < profile_.warmBytes; off += 64)
            lines.push_back(PrefillLine{base + off, false});
    }
}

bool
SyntheticTrace::next(TraceRecord &rec)
{
    const auto &kernel = kernels_[static_cast<size_t>(cur_kernel_)];
    const StaticInst &si = kernel.insts[static_cast<size_t>(cur_idx_)];
    fillDynamic(si, rec);
    advanceControl(si, rec);
    return true; // endless stream; callers bound by instruction count
}

} // namespace th
