/**
 * @file
 * Dynamic instruction trace record and the trace-source interface.
 *
 * The paper drives SimpleScalar/MASE with Alpha binaries from
 * SPEC2000, MediaBench, MiBench, the Wisconsin pointer benchmarks,
 * graphics programs, and BioBench/BioPerf. Those binaries are not
 * redistributable, so this library drives its cycle-level core model
 * with synthetic traces whose value-width, branch, and memory-locality
 * statistics are calibrated per benchmark (see suites.h).
 */

#ifndef TH_TRACE_TRACE_H
#define TH_TRACE_TRACE_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace th {

/** Maximum source operands per instruction. */
inline constexpr int kMaxSrcs = 2;

/** One dynamic instruction as consumed by the core model. */
struct TraceRecord
{
    Addr pc = 0;
    OpClass op = OpClass::Nop;

    int numSrcs = 0;
    RegIndex srcRegs[kMaxSrcs] = {0, 0};
    bool hasDst = false;
    RegIndex dstReg = 0;

    /**
     * Architectural result value. Drives the width predictor ground
     * truth, the register-file memoization bits, and the partial value
     * encoding. For stores this is the stored value; for branches the
     * (unused) condition.
     */
    std::uint64_t resultValue = 0;

    /** Source operand values (for operand-width mispredict modelling). */
    std::uint64_t srcValues[kMaxSrcs] = {0, 0};

    // --- Memory operations. ---
    Addr effAddr = 0;
    std::uint8_t memSize = 8;

    // --- Control transfer. ---
    bool taken = false;
    Addr target = 0;

    /** True when the op class is Load or Store. */
    bool isMem() const { return isMemOp(op); }

    /** True for any control transfer. */
    bool isControl() const { return isControlOp(op); }

    /** Width class of the result value. */
    Width resultWidth() const;

    /** Width class of source operand @p i. */
    Width srcWidth(int i) const;
};

/**
 * A cache line the simulator should treat as resident at time zero
 * (steady-state modelling for working sets the trace re-references).
 */
struct PrefillLine
{
    Addr addr = 0;
    bool intoL1 = false; ///< Also resident in the L1 (not just L2).
};

/**
 * A stream of dynamic instructions. Implementations: the synthetic
 * benchmark generator (generator.h) and test fixtures.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next dynamic instruction.
     * @return False when the trace is exhausted.
     */
    virtual bool next(TraceRecord &rec) = 0;

    /** Restart the stream from the beginning (deterministic sources). */
    virtual void reset() = 0;

    /**
     * Lines the benchmark's steady state keeps cache-resident. The
     * core pre-fills its hierarchy with these before simulating, so
     * short simulation windows see steady-state miss rates instead of
     * a cold-start transient (the role SimPoint warmup plays for the
     * paper's trace windows).
     */
    virtual void prefillLines(std::vector<PrefillLine> &lines) const
    {
        (void)lines;
    }
};

} // namespace th

#endif // TH_TRACE_TRACE_H
