/**
 * @file
 * Synthetic benchmark generator.
 *
 * Generates dynamic instruction traces from a randomly synthesised
 * *static program* (kernels of basic blocks with loop and branch
 * structure). Because width behaviour, branch bias, and memory access
 * patterns are attached to static instructions, the dynamic stream
 * exhibits the PC-correlated behaviours the paper's mechanisms exploit:
 * highly predictable per-PC value widths (Section 3), branch targets
 * near the branch PC (Section 3.7), and clustered stack/heap accesses
 * (Section 3.5).
 */

#ifndef TH_TRACE_GENERATOR_H
#define TH_TRACE_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/trace.h"

namespace th {

/**
 * Statistical profile of one benchmark. All `f*` op-mix fields are
 * fractions of the dynamic instruction stream and should sum to <= 1;
 * the remainder becomes IntAlu.
 */
struct BenchmarkProfile
{
    std::string name = "synthetic";
    std::string suite = "misc";

    // --- Dynamic op mix. ---
    double fShift = 0.05;
    double fMult = 0.01;
    double fFpAdd = 0.0;
    double fFpMult = 0.0;
    double fFpDiv = 0.0;
    double fLoad = 0.22;
    double fStore = 0.11;
    double fBranch = 0.15;
    double fJump = 0.015;
    double fIndirect = 0.005;
    double fNop = 0.01;

    // --- Value widths (integer results). ---
    /** Fraction of int-producing static insts biased to low width. */
    double lowWidthBias = 0.62;
    /** Per-dynamic-instance width flip probability (caps predictor
     *  accuracy; the paper observes 97% overall accuracy). */
    double widthNoise = 0.010;
    /** Given a full-width load value: probability the upper 48 bits are
     *  all ones (small negative numbers). */
    double loadUpperOnes = 0.12;
    /** ...or match the referencing address (nearby heap pointers). */
    double loadUpperAddr = 0.22;

    // --- Branch behaviour. ---
    double takenRate = 0.60;
    /** Fraction of conditional branches that are data-dependent noise
     *  (near-50/50), which the predictors cannot learn. */
    double branchNoise = 0.02;
    /** Mean distinct dynamic targets per indirect jump. */
    double indirectTargets = 2.0;

    // --- Static program shape. ---
    int numKernels = 24;
    int kernelSize = 28;
    double loopTripMean = 40.0;

    // --- Memory behaviour. ---
    double stackFrac = 0.35;  ///< Memory ops referencing the stack.
    double heapFrac = 0.45;   ///< ...the heap (rest hit globals).
    double pointerChaseFrac = 0.08; ///< Heap loads that pointer-chase.
    std::uint64_t hotBytes = 16 * 1024;        ///< L1-resident set.
    std::uint64_t warmBytes = 512 * 1024;      ///< L2-resident set.
    std::uint64_t coldBytes = 16ULL << 20;     ///< DRAM-resident set.
    double warmFrac = 0.06;   ///< Accesses directed at the warm set.
    double coldFrac = 0.001;  ///< Accesses directed at the cold set.

    // --- Dataflow. ---
    /** Mean register dependency distance (smaller = less ILP). */
    double depDistMean = 5.0;

    std::uint64_t seed = 0x7ead1;
};

/**
 * TraceSource implementation that walks a synthesised static program.
 * Deterministic for a given profile (including its seed).
 */
class SyntheticTrace : public TraceSource
{
  public:
    explicit SyntheticTrace(const BenchmarkProfile &profile);

    bool next(TraceRecord &rec) override;
    void reset() override;
    void prefillLines(std::vector<PrefillLine> &lines) const override;

    const BenchmarkProfile &profile() const { return profile_; }

  private:
    /** One static instruction of the synthesised program. */
    struct StaticInst
    {
        Addr pc = 0;
        OpClass op = OpClass::IntAlu;
        int numSrcs = 0;
        RegIndex srcRegs[kMaxSrcs] = {0, 0};
        bool hasDst = false;
        RegIndex dstReg = 0;

        /** Probability this instance's result is low-width. */
        double lowWidthProb = 0.5;

        /**
         * Per-site value shape for full-width results (real code has
         * strong per-PC value locality): 1 = upper bits all ones,
         * 2 = pointer-like (upper bits match the heap region),
         * 3 = arbitrary wide value.
         */
        int fullValueClass = 3;

        // Branches.
        double takenBias = 0.5;
        int targetIdx = -1;      ///< Kernel-local target (fwd branches).
        bool isLoopBranch = false;
        int jumpKernel = -1;     ///< Jump destination kernel.
        std::vector<int> indirectKernels; ///< Indirect target set.

        // Memory.
        int memRegion = 0;       ///< 0 stack, 1 heap, 2 global.
        int memSet = 0;          ///< 0 hot, 1 warm, 2 cold.
        bool pointerChase = false;
        std::uint64_t stride = 8;
    };

    struct Kernel
    {
        std::vector<StaticInst> insts;
        int loopBranchIdx = -1;
    };

    void buildProgram();
    void assignMemorySets();
    Kernel buildKernel(int index, Addr base_pc);
    OpClass sampleOpClass();
    void fillDynamic(const StaticInst &si, TraceRecord &rec);
    std::uint64_t sampleValue(const StaticInst &si, bool &is_low);
    Addr nextMemAddr(const StaticInst &si, int static_id);
    void advanceControl(const StaticInst &si, const TraceRecord &rec);

    BenchmarkProfile profile_;
    Rng rng_;
    std::vector<Kernel> kernels_;

    // Walker state.
    int cur_kernel_ = 0;
    int cur_idx_ = 0;
    int loop_trips_left_ = 0;
    std::vector<std::uint64_t> reg_values_;
    std::vector<std::uint64_t> mem_counters_; ///< Per-static-inst stride state.
    std::vector<Addr> chase_ptrs_;            ///< Per-static-inst chase state.
    std::vector<int> indirect_rr_;            ///< Round-robin state.

    // Region base addresses (distinct upper 16 bits, so PAM sees
    // broadcasts change exactly when the reference stream switches
    // region).
    static constexpr Addr kStackBase = 0x00007fffff000000ULL;
    static constexpr Addr kHeapBase = 0x0000200000000000ULL;
    static constexpr Addr kGlobalBase = 0x0000000040000000ULL;
    static constexpr Addr kTextBase = 0x0000000000400000ULL;
};

} // namespace th

#endif // TH_TRACE_GENERATOR_H
