#include "trace/trace.h"

#include "common/bitutil.h"

namespace th {

Width
TraceRecord::resultWidth() const
{
    return classifyWidth(resultValue);
}

Width
TraceRecord::srcWidth(int i) const
{
    if (i < 0 || i >= numSrcs)
        return Width::Low;
    return classifyWidth(srcValues[i]);
}

} // namespace th
