/**
 * @file
 * Benchmark suite registry: per-benchmark profiles standing in for the
 * paper's 106 application traces (SPECint2000, SPECfp2000, MediaBench,
 * MiBench, the Wisconsin pointer benchmarks, graphics codes, and
 * BioBench/BioPerf).
 *
 * Profiles are calibrated to the behavioural anchors the paper reports:
 * mcf is DRAM-bound (min 7% speedup), crafty compute-bound (65%),
 * patricia mispredict/L2-bound (max 77%), SPECfp memory-streaming
 * (29.5% group mean), mpeg2 the max-power app, susan the max
 * thermal-herding power saver (30%), yacr2 the min (15%) and the
 * TH-config worst-case thermal app.
 */

#ifndef TH_TRACE_SUITES_H
#define TH_TRACE_SUITES_H

#include <string>
#include <vector>

#include "trace/generator.h"

namespace th {

/** All registered benchmark profiles, grouped by suite. */
const std::vector<BenchmarkProfile> &allBenchmarks();

/** Profiles belonging to @p suite (e.g. "SPECint2000"). */
std::vector<BenchmarkProfile> benchmarksInSuite(const std::string &suite);

/** All suite names, in the paper's reporting order. */
std::vector<std::string> suiteNames();

/**
 * Look up a profile by benchmark name.
 * Calls fatal() when the name is unknown.
 */
const BenchmarkProfile &benchmarkByName(const std::string &name);

/** True when a benchmark with this name is registered. */
bool hasBenchmark(const std::string &name);

} // namespace th

#endif // TH_TRACE_SUITES_H
