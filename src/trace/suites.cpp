#include "trace/suites.h"

#include <algorithm>

#include "common/log.h"

namespace th {

namespace {

/** Base profile for a suite; individual benchmarks tweak fields. */
BenchmarkProfile
base(const std::string &suite, const std::string &name, std::uint64_t seed)
{
    BenchmarkProfile p;
    p.suite = suite;
    p.name = name;
    p.seed = seed * 0x9e3779b97f4a7c15ULL + 12345;
    return p;
}

std::vector<BenchmarkProfile>
buildAll()
{
    std::vector<BenchmarkProfile> v;
    std::uint64_t seed = 1;
    auto add = [&](BenchmarkProfile p) { v.push_back(std::move(p)); };

    // ---------------- SPECint2000 ----------------
    {
        auto p = base("SPECint2000", "gzip", seed++);
        p.fLoad = 0.22; p.fStore = 0.10; p.fBranch = 0.15;
        p.lowWidthBias = 0.68; p.warmFrac = 0.22; p.coldFrac = 0.0015;
        p.warmBytes = 192 * 1024;
        add(p);
    }
    {
        auto p = base("SPECint2000", "vpr", seed++);
        p.fLoad = 0.26; p.fStore = 0.11; p.fBranch = 0.13;
        p.fFpAdd = 0.04; p.fFpMult = 0.03;
        p.lowWidthBias = 0.55; p.warmFrac = 0.15; p.coldFrac = 0.0012;
        add(p);
    }
    {
        auto p = base("SPECint2000", "gcc", seed++);
        p.fLoad = 0.25; p.fStore = 0.14; p.fBranch = 0.17;
        p.fIndirect = 0.012;
        p.lowWidthBias = 0.60; p.branchNoise = 0.035;
        p.warmFrac = 0.22; p.coldFrac = 0.0015;
        p.numKernels = 32; p.loopTripMean = 12.0;
        add(p);
    }
    {
        // DRAM-bound pointer chaser: the paper's minimum speedup (7%).
        auto p = base("SPECint2000", "mcf", seed++);
        p.fLoad = 0.30; p.fStore = 0.09; p.fBranch = 0.12;
        p.lowWidthBias = 0.45;
        p.branchNoise = 0.008;
        p.pointerChaseFrac = 0.85;
        p.stackFrac = 0.10; p.heapFrac = 0.80;
        p.coldFrac = 0.30; p.coldBytes = 160ULL << 20;
        p.warmFrac = 0.10;
        p.depDistMean = 3.0;
        add(p);
    }
    {
        // Compute-bound chess engine: 65% speedup anchor.
        auto p = base("SPECint2000", "crafty", seed++);
        p.fLoad = 0.19; p.fStore = 0.07; p.fBranch = 0.14;
        p.fShift = 0.11; // bitboards
        p.lowWidthBias = 0.42; // 64-bit bitboards are full width
        p.warmFrac = 0.48; p.warmBytes = 1024 * 1024;
        p.coldFrac = 0.0;
        p.depDistMean = 3.5;
        p.branchNoise = 0.055;
        p.pointerChaseFrac = 0.55;
        add(p);
    }
    {
        auto p = base("SPECint2000", "parser", seed++);
        p.fLoad = 0.24; p.fStore = 0.11; p.fBranch = 0.16;
        p.lowWidthBias = 0.62; p.pointerChaseFrac = 0.20;
        p.warmFrac = 0.16; p.coldFrac = 0.0012;
        add(p);
    }
    {
        auto p = base("SPECint2000", "eon", seed++);
        p.fLoad = 0.23; p.fStore = 0.13; p.fBranch = 0.11;
        p.fFpAdd = 0.07; p.fFpMult = 0.06;
        p.fIndirect = 0.022; // virtual dispatch
        p.branchNoise = 0.04;
        p.lowWidthBias = 0.50; p.warmFrac = 0.10; p.coldFrac = 0.0004;
        add(p);
    }
    {
        auto p = base("SPECint2000", "perlbmk", seed++);
        p.fLoad = 0.25; p.fStore = 0.13; p.fBranch = 0.15;
        p.fIndirect = 0.02;
        p.lowWidthBias = 0.58; p.branchNoise = 0.030;
        p.warmFrac = 0.14; p.coldFrac = 0.0015;
        p.numKernels = 28;
        add(p);
    }
    {
        auto p = base("SPECint2000", "gap", seed++);
        p.fLoad = 0.23; p.fStore = 0.10; p.fBranch = 0.14;
        p.fMult = 0.03;
        p.lowWidthBias = 0.60; p.warmFrac = 0.15; p.coldFrac = 0.002;
        add(p);
    }
    {
        auto p = base("SPECint2000", "vortex", seed++);
        p.fLoad = 0.27; p.fStore = 0.15; p.fBranch = 0.14;
        p.lowWidthBias = 0.57; p.warmFrac = 0.18; p.coldFrac = 0.001;
        p.numKernels = 26;
        add(p);
    }
    {
        auto p = base("SPECint2000", "bzip2", seed++);
        p.fLoad = 0.24; p.fStore = 0.10; p.fBranch = 0.14;
        p.lowWidthBias = 0.72; // byte-granular compression
        p.warmFrac = 0.22; p.coldFrac = 0.0025;
        p.warmBytes = 768 * 1024;
        add(p);
    }
    {
        auto p = base("SPECint2000", "twolf", seed++);
        p.fLoad = 0.25; p.fStore = 0.10; p.fBranch = 0.14;
        p.fFpAdd = 0.03; p.fFpMult = 0.02;
        p.lowWidthBias = 0.55; p.warmFrac = 0.16; p.coldFrac = 0.0025;
        add(p);
    }

    {
        auto p = base("SPECint2000", "sixtrack-int", seed++);
        p.fLoad = 0.21; p.fStore = 0.09; p.fBranch = 0.12;
        p.fShift = 0.07;
        p.lowWidthBias = 0.58; p.warmFrac = 0.12; p.coldFrac = 0.002;
        add(p);
    }

    // ---------------- SPECfp2000 ----------------
    // FP codes stream large arrays through the cache hierarchy: high
    // DRAM traffic caps the benefit of a faster core (29.5% mean).
    auto fp_base = [&](const std::string &name) {
        auto p = base("SPECfp2000", name, seed++);
        p.fFpAdd = 0.18; p.fFpMult = 0.14; p.fFpDiv = 0.01;
        p.fLoad = 0.28; p.fStore = 0.10; p.fBranch = 0.06;
        p.fShift = 0.02;
        p.lowWidthBias = 0.30; // loop counters/indices only
        p.takenRate = 0.85; p.branchNoise = 0.01;
        p.loopTripMean = 200.0;
        p.numKernels = 16;
        p.stackFrac = 0.08; p.heapFrac = 0.30;
        p.coldFrac = 0.020; p.coldBytes = 64ULL << 20;
        p.warmFrac = 0.22;
        p.pointerChaseFrac = 0.0;
        p.depDistMean = 8.0;
        return p;
    };
    {
        auto p = fp_base("wupwise");
        p.coldFrac = 0.004;
        add(p);
    }
    {
        auto p = fp_base("swim");
        p.coldFrac = 0.018; // notorious streaming
        add(p);
    }
    {
        auto p = fp_base("mgrid");
        p.coldFrac = 0.008;
        add(p);
    }
    {
        auto p = fp_base("applu");
        p.coldFrac = 0.007; p.fFpDiv = 0.02;
        add(p);
    }
    {
        auto p = fp_base("mesa");
        p.coldFrac = 0.003; p.lowWidthBias = 0.45; // pixel data
        p.fBranch = 0.10;
        add(p);
    }
    {
        auto p = fp_base("art");
        p.coldFrac = 0.012; p.warmFrac = 0.30;
        add(p);
    }
    {
        auto p = fp_base("equake");
        p.coldFrac = 0.012; p.pointerChaseFrac = 0.15;
        add(p);
    }
    {
        auto p = fp_base("ammp");
        p.coldFrac = 0.006; p.pointerChaseFrac = 0.08;
        add(p);
    }

    {
        auto p = fp_base("sixtrack");
        p.coldFrac = 0.004; p.lowWidthBias = 0.35;
        add(p);
    }
    {
        auto p = fp_base("facerec");
        p.coldFrac = 0.010; p.warmFrac = 0.28;
        add(p);
    }
    {
        auto p = fp_base("lucas");
        p.coldFrac = 0.016;
        add(p);
    }

    // ---------------- MediaBench ----------------
    auto media_base = [&](const std::string &name) {
        auto p = base("MediaBench", name, seed++);
        p.fLoad = 0.24; p.fStore = 0.12; p.fBranch = 0.12;
        p.fShift = 0.09; p.fMult = 0.03;
        p.lowWidthBias = 0.74; // 8/16-bit pixel and sample data
        p.takenRate = 0.75; p.branchNoise = 0.015;
        p.loopTripMean = 64.0;
        p.warmFrac = 0.08; p.coldFrac = 0.0008;
        p.depDistMean = 7.0;
        return p;
    };
    {
        // Highest-power application in the paper's evaluation.
        auto p = media_base("mpeg2enc");
        p.lowWidthBias = 0.66;
        p.fMult = 0.05; p.depDistMean = 14.0;
        p.fBranch = 0.10; p.branchNoise = 0.006;
        p.loopTripMean = 96.0;
        p.warmFrac = 0.08;
        add(p);
    }
    {
        auto p = media_base("mpeg2dec");
        p.lowWidthBias = 0.76; p.depDistMean = 3.5;
        p.branchNoise = 0.02;
        add(p);
    }
    {
        auto p = media_base("jpeg");
        p.fMult = 0.04;
        add(p);
    }
    {
        auto p = media_base("epic");
        p.fFpAdd = 0.05; p.fFpMult = 0.04; p.lowWidthBias = 0.70;
        p.fLoad = 0.19; p.fStore = 0.09;
        p.depDistMean = 4.0; p.branchNoise = 0.03;
        add(p);
    }
    {
        auto p = media_base("adpcm");
        p.lowWidthBias = 0.72; p.fLoad = 0.18; p.fStore = 0.09;
        p.depDistMean = 5.0;
        add(p);
    }
    {
        auto p = media_base("g721");
        p.depDistMean = 4.0; p.branchNoise = 0.02;
        p.lowWidthBias = 0.74;
        add(p);
    }

    {
        auto p = media_base("gsm");
        p.lowWidthBias = 0.74; p.fShift = 0.11;
        add(p);
    }
    {
        auto p = media_base("pegwit");
        p.lowWidthBias = 0.55; p.fMult = 0.06;
        p.depDistMean = 4.0;
        add(p);
    }

    // ---------------- MiBench ----------------
    {
        // Maximum speedup anchor (77%): trie lookups, branchy and
        // L2-latency-sensitive, cache-resident.
        auto p = base("MiBench", "patricia", seed++);
        p.fLoad = 0.30; p.fStore = 0.05; p.fBranch = 0.20;
        p.lowWidthBias = 0.66;
        p.branchNoise = 0.050;
        p.pointerChaseFrac = 0.85;
        p.stackFrac = 0.08; p.heapFrac = 0.88;
        p.warmFrac = 0.62; p.warmBytes = 320 * 1024;
        p.coldFrac = 0.0;
        p.depDistMean = 2.0;
        p.loopTripMean = 10.0; p.numKernels = 24;
        add(p);
    }
    {
        // Maximum thermal-herding power saving (30%): smoothing filter
        // over 8-bit pixels, compute-bound.
        auto p = base("MiBench", "susan", seed++);
        p.fLoad = 0.22; p.fStore = 0.10; p.fBranch = 0.10;
        p.fShift = 0.08; p.fMult = 0.05;
        p.lowWidthBias = 0.94;
        p.takenRate = 0.85; p.branchNoise = 0.01;
        p.warmFrac = 0.06; p.coldFrac = 0.0002;
        p.depDistMean = 8.0; p.loopTripMean = 128.0;
        add(p);
    }
    {
        auto p = base("MiBench", "dijkstra", seed++);
        p.fLoad = 0.27; p.fStore = 0.09; p.fBranch = 0.17;
        p.lowWidthBias = 0.70; p.warmFrac = 0.25; p.coldFrac = 0.002;
        p.branchNoise = 0.035;
        add(p);
    }
    {
        auto p = base("MiBench", "qsort", seed++);
        p.fLoad = 0.26; p.fStore = 0.13; p.fBranch = 0.18;
        p.fIndirect = 0.02; // comparison callback
        p.lowWidthBias = 0.60; p.branchNoise = 0.050;
        p.warmFrac = 0.20; p.coldFrac = 0.002;
        add(p);
    }
    {
        auto p = base("MiBench", "sha", seed++);
        p.fLoad = 0.16; p.fStore = 0.07; p.fBranch = 0.08;
        p.fShift = 0.16;
        p.lowWidthBias = 0.35; // 32-bit rotates chained
        p.takenRate = 0.9; p.branchNoise = 0.005;
        p.depDistMean = 3.0; p.loopTripMean = 80.0;
        add(p);
    }
    {
        auto p = base("MiBench", "crc32", seed++);
        p.fLoad = 0.18; p.fStore = 0.04; p.fBranch = 0.12;
        p.fShift = 0.10;
        p.lowWidthBias = 0.62; p.depDistMean = 3.0;
        p.takenRate = 0.95; p.branchNoise = 0.002;
        p.loopTripMean = 400.0; p.numKernels = 8;
        add(p);
    }

    {
        auto p = base("MiBench", "rijndael", seed++);
        p.fLoad = 0.24; p.fStore = 0.10; p.fBranch = 0.07;
        p.fShift = 0.13;
        p.lowWidthBias = 0.58; // table lookups mix bytes and words
        p.takenRate = 0.92; p.branchNoise = 0.004;
        p.loopTripMean = 80.0;
        p.warmFrac = 0.05; p.coldFrac = 0.0008;
        p.depDistMean = 3.0;
        add(p);
    }
    {
        auto p = base("MiBench", "bitcount", seed++);
        p.fLoad = 0.10; p.fStore = 0.03; p.fBranch = 0.16;
        p.fShift = 0.18;
        p.lowWidthBias = 0.80;
        p.branchNoise = 0.02;
        p.warmFrac = 0.01; p.coldFrac = 0.0;
        add(p);
    }
    {
        auto p = base("MiBench", "basicmath", seed++);
        p.fLoad = 0.18; p.fStore = 0.08; p.fBranch = 0.12;
        p.fFpAdd = 0.10; p.fFpMult = 0.08; p.fFpDiv = 0.015;
        p.lowWidthBias = 0.55;
        p.warmFrac = 0.04; p.coldFrac = 0.0006;
        add(p);
    }

    // ---------------- Pointer (Wisconsin) ----------------
    {
        // Memory-intensive channel router: minimum TH power saving
        // (15%) and the TH-config worst-case thermal application (the
        // D-cache becomes the hotspot).
        auto p = base("Pointer", "yacr2", seed++);
        p.fLoad = 0.36; p.fStore = 0.15; p.fBranch = 0.12;
        p.branchNoise = 0.008; p.depDistMean = 5.0;
        p.lowWidthBias = 0.10; // pointer-heavy, full-width data
        p.loadUpperOnes = 0.02; p.loadUpperAddr = 0.05;
        p.pointerChaseFrac = 0.30;
        p.stackFrac = 0.08; p.heapFrac = 0.80;
        p.warmFrac = 0.38; p.warmBytes = 1536 * 1024;
        p.coldFrac = 0.0025;
        p.widthNoise = 0.09; // width mispredicts add D$ accesses
        p.depDistMean = 3.5;
        add(p);
    }
    {
        auto p = base("Pointer", "anagram", seed++);
        p.fLoad = 0.26; p.fStore = 0.08; p.fBranch = 0.17;
        p.lowWidthBias = 0.66; p.pointerChaseFrac = 0.25;
        p.warmFrac = 0.12; p.coldFrac = 0.0006;
        add(p);
    }
    {
        auto p = base("Pointer", "bc", seed++);
        p.fLoad = 0.24; p.fStore = 0.12; p.fBranch = 0.16;
        p.fIndirect = 0.015;
        p.lowWidthBias = 0.64; p.warmFrac = 0.10; p.coldFrac = 0.0005;
        add(p);
    }
    {
        auto p = base("Pointer", "ft", seed++);
        p.fLoad = 0.28; p.fStore = 0.10; p.fBranch = 0.15;
        p.lowWidthBias = 0.55; p.pointerChaseFrac = 0.40;
        p.warmFrac = 0.24; p.coldFrac = 0.004;
        add(p);
    }

    {
        auto p = base("Pointer", "ks", seed++);
        p.fLoad = 0.27; p.fStore = 0.09; p.fBranch = 0.16;
        p.lowWidthBias = 0.58; p.pointerChaseFrac = 0.30;
        p.warmFrac = 0.15; p.coldFrac = 0.0015;
        add(p);
    }
    {
        auto p = base("Pointer", "tsp", seed++);
        p.fLoad = 0.25; p.fStore = 0.07; p.fBranch = 0.14;
        p.fFpAdd = 0.06; p.fFpMult = 0.05;
        p.lowWidthBias = 0.50; p.pointerChaseFrac = 0.35;
        p.warmFrac = 0.22; p.coldFrac = 0.002;
        add(p);
    }

    // ---------------- Graphics ----------------
    auto gfx_base = [&](const std::string &name) {
        auto p = base("Graphics", name, seed++);
        p.fLoad = 0.24; p.fStore = 0.12; p.fBranch = 0.13;
        p.fShift = 0.07; p.fMult = 0.03;
        p.fFpAdd = 0.05; p.fFpMult = 0.04;
        p.lowWidthBias = 0.72;
        p.takenRate = 0.7; p.branchNoise = 0.025;
        p.warmFrac = 0.12; p.coldFrac = 0.0010;
        return p;
    };
    {
        auto p = gfx_base("doom");
        p.depDistMean = 4.5;
        add(p);
    }
    {
        auto p = gfx_base("quake");
        p.fFpAdd = 0.09; p.fFpMult = 0.07; p.lowWidthBias = 0.60;
        p.branchNoise = 0.035;
        add(p);
    }
    {
        auto p = gfx_base("raytrace");
        p.fFpAdd = 0.14; p.fFpMult = 0.12; p.fFpDiv = 0.02;
        p.lowWidthBias = 0.40; p.pointerChaseFrac = 0.20;
        add(p);
    }
    {
        auto p = gfx_base("mpegplay");
        p.lowWidthBias = 0.78;
        add(p);
    }

    {
        auto p = gfx_base("povray");
        p.fFpAdd = 0.12; p.fFpMult = 0.10; p.fFpDiv = 0.015;
        p.lowWidthBias = 0.45;
        add(p);
    }
    {
        auto p = gfx_base("mpeg4dec");
        p.lowWidthBias = 0.80; p.fShift = 0.10;
        add(p);
    }

    // ---------------- BioBench ----------------
    auto bio_base = [&](const std::string &name) {
        auto p = base("BioBench", name, seed++);
        p.fLoad = 0.26; p.fStore = 0.08; p.fBranch = 0.18;
        p.lowWidthBias = 0.78; // nucleotide/ascii data
        p.takenRate = 0.65; p.branchNoise = 0.030;
        p.warmFrac = 0.18; p.coldFrac = 0.0012;
        p.loopTripMean = 48.0;
        return p;
    };
    add(bio_base("blast"));
    {
        auto p = bio_base("fasta");
        p.coldFrac = 0.0040; p.warmFrac = 0.25;
        add(p);
    }
    {
        auto p = bio_base("clustalw");
        p.fMult = 0.02; p.branchNoise = 0.035; p.coldFrac = 0.0010;
        add(p);
    }
    {
        auto p = bio_base("hmmer");
        p.fMult = 0.04; p.lowWidthBias = 0.60;
        p.depDistMean = 5.0;
        add(p);
    }

    {
        auto p = bio_base("grappa");
        p.fMult = 0.02; p.warmFrac = 0.22;
        add(p);
    }
    {
        auto p = bio_base("phylip");
        p.fFpAdd = 0.08; p.fFpMult = 0.06;
        p.lowWidthBias = 0.55; p.coldFrac = 0.002;
        add(p);
    }

    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
allBenchmarks()
{
    static const std::vector<BenchmarkProfile> all = buildAll();
    return all;
}

std::vector<BenchmarkProfile>
benchmarksInSuite(const std::string &suite)
{
    std::vector<BenchmarkProfile> out;
    for (const auto &p : allBenchmarks())
        if (p.suite == suite)
            out.push_back(p);
    return out;
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const auto &p : allBenchmarks())
        if (std::find(names.begin(), names.end(), p.suite) == names.end())
            names.push_back(p.suite);
    return names;
}

const BenchmarkProfile &
benchmarkByName(const std::string &name)
{
    for (const auto &p : allBenchmarks())
        if (p.name == name)
            return p;
    fatal("unknown benchmark '%s'", name.c_str());
}

bool
hasBenchmark(const std::string &name)
{
    for (const auto &p : allBenchmarks())
        if (p.name == name)
            return true;
    return false;
}

} // namespace th
