#include "circuit/blocks.h"

#include <algorithm>
#include <cmath>

#include "circuit/adder.h"
#include "circuit/bypass.h"
#include "circuit/logical_effort.h"
#include "circuit/sram.h"
#include "circuit/wire.h"
#include "common/log.h"
#include "common/types.h"

namespace th {

namespace {

/** RS entry pitch along the tag broadcast bus (mm). */
constexpr double kRsEntryPitchMm = 0.040;

/** Distributed comparator load on the tag broadcast bus (fF/mm). */
constexpr double kTagBusLoadFfPerMm = 333.0;

/** Distributed operand-latch load on the bypass bus (fF/mm). */
constexpr double kBypassLoadFfPerMm = 300.0;

/**
 * Energy scaling applied when moving a block from 2D to the 4-die 3D
 * implementation. At 65nm, block dynamic energy is wire-dominated;
 * folding a block over four dies quarters its footprint, halving wire
 * lengths, and removes repeater/driver overhead on the shortened nets.
 * We model per-access energy as 20% wire-independent logic plus 80%
 * wire energy that scales to 40% of its planar value:
 * E3D = (0.2 + 0.8 * 0.4) * E2D = 0.52 * E2D.
 * This matches the total-power arithmetic of Section 5.2: 90 W planar
 * -> 72.7 W for 3D-without-herding at 1.479x frequency once the halved
 * clock network and constant leakage are accounted for.
 */
constexpr double kWireFraction = 0.80;
constexpr double kWireFactor3d = 0.40;
constexpr double k3dEnergyScale =
    (1.0 - kWireFraction) + kWireFraction * kWireFactor3d;

/**
 * Fraction of a herded access's 3D energy consumed when only the top
 * die is active: one of four 16-bit slices plus the always-on
 * memoization/control overhead on the top die.
 */
constexpr double kLowWidthEnergyScale = 0.35;

} // namespace

double
SchedulerLoop::latencyPs(int entries, bool stacked, const Technology &tech)
{
    WireModel wires(tech);
    LogicPath logic(tech);

    const int per_die = stacked ? std::max(1, entries / kNumDies) : entries;
    const double bus_len =
        static_cast<double>(per_die) * kRsEntryPitchMm;

    // Tag broadcast across the RS entry stack, loaded by the per-entry
    // comparators.
    double broadcast = wires.repeatedDelayLoaded(
        bus_len, WireLayer::Intermediate, kTagBusLoadFfPerMm);

    // Tag comparator: 8-bit XOR + wide NOR, two optimised stages.
    const double compare = logic.fixedStageDelay(16.0, 2, 8.0);

    // Ready accumulation (set both-operands-ready).
    const double ready = tech.tau * 3.0;

    // Select: radix-4 arbitration tree, requests up / grants down.
    const double arb_gates = tech.tau * 19.0;
    double arb_wire = 1.5 * bus_len *
        wires.repeatedDelayPerMm(WireLayer::Intermediate);

    // Issue latch + clock skew margin.
    const double latch = tech.tau * 3.0;

    double via = 0.0;
    if (stacked) {
        // Broadcast fans out through the stack in parallel; the select
        // tree merges per-die winners through the vias.
        via = 2.0 * tech.d2dViaDelay;
    }

    return broadcast + compare + ready + arb_gates + arb_wire + latch + via;
}

BlockLibrary::BlockLibrary(const Technology &tech)
    : tech_(tech)
{
    build();
}

const BlockTiming *
BlockLibrary::find(const std::string &name) const
{
    for (const auto &b : table_)
        if (b.name == name)
            return &b;
    return nullptr;
}

void
BlockLibrary::build()
{
    WireModel wires(tech_);
    LogicPath logic(tech_);

    auto add = [this](const std::string &name, double lat2d, double lat3d,
                      bool critical = false) {
        table_.push_back(BlockTiming{name, lat2d, lat3d, critical});
    };

    // --- Critical loop 1: instruction scheduler wakeup-select. ---
    const double wakeup_2d = SchedulerLoop::latencyPs(32, false, tech_);
    const double wakeup_3d = SchedulerLoop::latencyPs(32, true, tech_);
    add("Scheduler (wakeup-select)", wakeup_2d, wakeup_3d, true);

    // --- Critical loop 2: ALU + bypass. ---
    AdderModel adder(64, tech_);
    const AdderResult add_2d = adder.planar();
    const AdderResult add_3d = adder.stacked();
    add("Integer adder", add_2d.total(), add_3d.total());

    BypassParams bp;
    bp.funcUnits = 8;
    bp.fuHeightMm = 0.315;
    BypassModel bypass(bp, tech_);
    const BypassResult byp_2d = bypass.planar();
    const BypassResult byp_3d = bypass.stacked();
    // The bypass bus is loaded by operand latches; recompute the wire
    // flight with the distributed load (the BypassModel keeps the
    // unloaded value for standalone studies).
    const double byp_wire_2d = wires.repeatedDelayLoaded(
        static_cast<double>(bp.funcUnits) * bp.fuHeightMm,
        WireLayer::Intermediate, kBypassLoadFfPerMm);
    const double byp_wire_3d = wires.repeatedDelayLoaded(
        static_cast<double>(bp.funcUnits) * bp.fuHeightMm / 4.0,
        WireLayer::Intermediate, kBypassLoadFfPerMm) +
        2.0 * tech_.d2dViaDelay;

    const double alu_loop_2d = add_2d.total() + byp_wire_2d + byp_2d.muxDelay;
    const double alu_loop_3d = add_3d.total() + byp_wire_3d + byp_3d.muxDelay;
    add("ALU + bypass loop", alu_loop_2d, alu_loop_3d, true);

    // --- Register file (8-port, 128 x 64b, word-partitioned in 3D). ---
    SramParams rf_p;
    rf_p.entries = 128;
    rf_p.bitsPerEntry = 64;
    rf_p.readPorts = 6;
    rf_p.writePorts = 3;
    SramArray rf_2d(rf_p, Partition3D::None, tech_);
    SramArray rf_3d(rf_p, Partition3D::WordSlice, tech_);
    add("Register file", rf_2d.readLatency(), rf_3d.readLatency());

    // --- ROB (96 x 64b payload, word-partitioned). ---
    SramParams rob_p;
    rob_p.entries = 96;
    rob_p.bitsPerEntry = 64;
    rob_p.readPorts = 4;
    rob_p.writePorts = 4;
    SramArray rob_2d(rob_p, Partition3D::None, tech_);
    SramArray rob_3d(rob_p, Partition3D::WordSlice, tech_);
    add("Reorder buffer", rob_2d.readLatency(), rob_3d.readLatency());

    // --- L1 caches (32KB, 8-way): data array + local routing. ---
    SramParams l1_p;
    l1_p.entries = 512;
    l1_p.bitsPerEntry = 512;
    l1_p.readPorts = 1;
    l1_p.writePorts = 1;
    l1_p.columnMux = 2;
    l1_p.routeLenMm = 1.0;
    SramArray l1_2d(l1_p, Partition3D::None, tech_);
    SramArray l1_3d(l1_p, Partition3D::Quad, tech_);
    add("L1 I-cache", l1_2d.readLatency(), l1_3d.readLatency());

    SramArray dl1_3d(l1_p, Partition3D::WordSlice, tech_);
    add("L1 D-cache", l1_2d.readLatency(), dl1_3d.readLatency());

    // --- L2 cache (4MB, 16-way): subbank + long H-tree. ---
    SramParams l2_p;
    l2_p.entries = 1024;
    l2_p.bitsPerEntry = 512;
    l2_p.columnMux = 4;
    l2_p.routeLenMm = 10.0;
    SramArray l2_2d(l2_p, Partition3D::None, tech_);
    SramArray l2_3d(l2_p, Partition3D::Quad, tech_);
    add("L2 cache", l2_2d.readLatency(), l2_3d.readLatency());

    // --- TLBs. ---
    SramParams itlb_p;
    itlb_p.entries = 128;
    itlb_p.bitsPerEntry = 64;
    SramArray itlb_2d(itlb_p, Partition3D::None, tech_);
    SramArray itlb_3d(itlb_p, Partition3D::Quad, tech_);
    add("I-TLB", itlb_2d.readLatency(), itlb_3d.readLatency());

    SramParams dtlb_p;
    dtlb_p.entries = 256;
    dtlb_p.bitsPerEntry = 64;
    SramArray dtlb_2d(dtlb_p, Partition3D::None, tech_);
    SramArray dtlb_3d(dtlb_p, Partition3D::Quad, tech_);
    add("D-TLB", dtlb_2d.readLatency(), dtlb_3d.readLatency());

    // --- BTB (2K entries, 4-way), target word-partitioned. ---
    SramParams btb_p;
    btb_p.entries = 2048;
    btb_p.bitsPerEntry = 64;
    btb_p.columnMux = 8;
    btb_p.routeLenMm = 0.6;
    SramArray btb_2d(btb_p, Partition3D::None, tech_);
    SramArray btb_3d(btb_p, Partition3D::WordSlice, tech_);
    add("Branch target buffer", btb_2d.readLatency(), btb_3d.readLatency());

    // --- Branch direction predictor (10KB hybrid). ---
    SramParams bpred_p;
    bpred_p.entries = 4096;
    bpred_p.bitsPerEntry = 16;
    bpred_p.columnMux = 16;
    bpred_p.routeLenMm = 0.8;
    SramArray bpred_2d(bpred_p, Partition3D::None, tech_);
    SramArray bpred_3d(bpred_p, Partition3D::RowSlice, tech_);
    add("Branch predictor", bpred_2d.readLatency(), bpred_3d.readLatency());

    // --- Load / store queues (address CAM + data array). ---
    SramParams lq_p;
    lq_p.entries = 32;
    lq_p.bitsPerEntry = 64;
    lq_p.readPorts = 2;
    lq_p.writePorts = 2;
    SramArray lq_2d(lq_p, Partition3D::None, tech_);
    SramArray lq_3d(lq_p, Partition3D::WordSlice, tech_);
    const double cam_cmp = logic.fixedStageDelay(20.0, 2, 10.0);
    add("Load queue", lq_2d.readLatency() + cam_cmp,
        lq_3d.readLatency() + cam_cmp);

    SramParams sq_p = lq_p;
    sq_p.entries = 20;
    SramArray sq_2d(sq_p, Partition3D::None, tech_);
    SramArray sq_3d(sq_p, Partition3D::WordSlice, tech_);
    add("Store queue", sq_2d.readLatency() + cam_cmp,
        sq_3d.readLatency() + cam_cmp);

    // --- Clock period: max of the two frequency-critical loops. ---
    period_2d_ = std::max(wakeup_2d, alu_loop_2d);
    period_3d_ = std::max(wakeup_3d, alu_loop_3d);
    if (period_3d_ >= period_2d_)
        panic("3D clock period (%f) not faster than 2D (%f)",
              period_3d_, period_2d_);

    // --- Energy tables. ---
    // Planar per-access energies from the array/datapath models. These
    // set the *relative* weights between blocks (which the thermal map
    // depends on); the power model applies a single global calibration
    // to land the baseline dual-core mpeg2 run at the paper's 90 W.
    CoreEnergies &e2 = energies_2d_;

    const ArrayEnergy rf_e = rf_2d.accessEnergy();
    e2.rfReadLow = e2.rfReadFull = rf_e.read;
    e2.rfWriteLow = e2.rfWriteFull = rf_e.write;

    const ArrayEnergy rob_e = rob_2d.accessEnergy();
    e2.robReadLow = e2.robReadFull = rob_e.read;
    e2.robWriteLow = e2.robWriteFull = rob_e.write;

    e2.aluLow = e2.aluFull = add_2d.energyFull;
    e2.shiftLow = e2.shiftFull = add_2d.energyFull * 0.7;
    e2.multLow = e2.multFull = add_2d.energyFull * 3.5;
    e2.fpOp = add_2d.energyFull * 4.0;
    e2.bypassLow = e2.bypassFull = byp_2d.energyFull;

    // Tag broadcast energy: loaded bus across one die's RS entry
    // slice, plus the per-entry comparators and ready logic that fire
    // on every broadcast. Schedulers burn a large share of core power
    // (CAM match on every wakeup), which is why the RS is the paper's
    // planar hotspot.
    const double rs_bus_len = 32.0 * kRsEntryPitchMm;
    const double tag_bits = 8.0;
    const double cmp_energy_per_entry = tech_.switchEnergy(
        tech_.cInv * 520.0); // 2 tag comparators + ready update
    e2.schedWakeupPerDie = tech_.switchEnergy(
        (wires.cPerMm(WireLayer::Intermediate) + kTagBusLoadFfPerMm) *
        rs_bus_len) * tag_bits / 4.0 +
        cmp_energy_per_entry * 8.0;
    e2.schedSelect = tech_.switchEnergy(tech_.cInv * 4200.0);
    e2.schedAlloc = tech_.switchEnergy(tech_.cInv * 7600.0);

    const ArrayEnergy lq_e = lq_2d.accessEnergy();
    e2.lsqSearchLow = e2.lsqSearchFull = lq_e.read * 1.6; // CAM match
    e2.lsqWrite = lq_e.write;

    const ArrayEnergy l1_e = l1_2d.accessEnergy();
    e2.dl1ReadLow = e2.dl1ReadFull = l1_e.read;
    e2.dl1WriteLow = e2.dl1WriteFull = l1_e.write;
    e2.dl1Fill = l1_e.write * 1.5;
    e2.il1Access = l1_e.read;

    e2.itlbAccess = itlb_2d.accessEnergy().read;
    e2.dtlbAccess = dtlb_2d.accessEnergy().read;

    const ArrayEnergy btb_e = btb_2d.accessEnergy();
    e2.btbLow = e2.btbFull = btb_e.read;
    e2.bpredLookup = bpred_2d.accessEnergy().read;
    e2.bpredUpdate = bpred_2d.accessEnergy().write;

    e2.decodeUop = tech_.switchEnergy(tech_.cInv * 2500.0);
    e2.renameUop = tech_.switchEnergy(tech_.cInv * 2000.0);
    e2.l2Access = l2_2d.accessEnergy().read;

    // Random logic + inter-block global wiring per uop; wire-dominated.
    e2.miscPerUop = tech_.switchEnergy(tech_.cInv * 12000.0);

    // 3D table: every full-width access is cheaper by the wire-folding
    // factor; herded (low-width) accesses additionally confine activity
    // to the top die.
    CoreEnergies &e3 = energies_3d_;
    e3 = e2;
    auto scale3d = [](double &v) { v *= k3dEnergyScale; };
    scale3d(e3.rfReadFull);   scale3d(e3.rfWriteFull);
    scale3d(e3.robReadFull);  scale3d(e3.robWriteFull);
    scale3d(e3.aluFull);      scale3d(e3.shiftFull);
    scale3d(e3.multFull);     scale3d(e3.fpOp);
    scale3d(e3.bypassFull);
    e3.schedWakeupPerDie = e2.schedWakeupPerDie * k3dEnergyScale;
    scale3d(e3.schedSelect);  scale3d(e3.schedAlloc);
    scale3d(e3.lsqSearchFull); scale3d(e3.lsqWrite);
    scale3d(e3.dl1ReadFull);  scale3d(e3.dl1WriteFull);
    scale3d(e3.dl1Fill);      scale3d(e3.il1Access);
    scale3d(e3.itlbAccess);   scale3d(e3.dtlbAccess);
    scale3d(e3.btbFull);
    scale3d(e3.bpredLookup);  scale3d(e3.bpredUpdate);
    scale3d(e3.decodeUop);    scale3d(e3.renameUop);
    scale3d(e3.l2Access);
    scale3d(e3.miscPerUop);

    e3.rfReadLow = e3.rfReadFull * kLowWidthEnergyScale;
    e3.rfWriteLow = e3.rfWriteFull * kLowWidthEnergyScale;
    e3.robReadLow = e3.robReadFull * kLowWidthEnergyScale;
    e3.robWriteLow = e3.robWriteFull * kLowWidthEnergyScale;
    e3.aluLow = e3.aluFull * kLowWidthEnergyScale;
    e3.shiftLow = e3.shiftFull * kLowWidthEnergyScale;
    e3.multLow = e3.multFull * kLowWidthEnergyScale;
    e3.bypassLow = e3.bypassFull * kLowWidthEnergyScale;
    e3.lsqSearchLow = e3.lsqSearchFull * kLowWidthEnergyScale;
    e3.dl1ReadLow = e3.dl1ReadFull * kLowWidthEnergyScale;
    e3.dl1WriteLow = e3.dl1WriteFull * kLowWidthEnergyScale;
    e3.btbLow = e3.btbFull * kLowWidthEnergyScale;
}

} // namespace th
