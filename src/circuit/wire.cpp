#include "circuit/wire.h"

#include <cmath>

namespace th {

WireModel::WireModel(const Technology &tech)
    : tech_(tech)
{
}

double
WireModel::rPerMm(WireLayer layer) const
{
    return layer == WireLayer::Intermediate ? tech_.wireRInt
                                            : tech_.wireRGlob;
}

double
WireModel::cPerMm(WireLayer layer) const
{
    return layer == WireLayer::Intermediate ? tech_.wireCInt
                                            : tech_.wireCGlob;
}

double
WireModel::unrepeatedDelay(double len_mm, WireLayer layer,
                           double r_drv, double c_load) const
{
    const double r_w = rPerMm(layer) * len_mm;          // ohm
    const double c_w = cPerMm(layer) * len_mm;          // fF
    // Elmore: driver sees all wire + load cap; distributed wire RC gets
    // the 0.38 factor; wire R drives the endpoint load.
    const double d_fs = r_drv * (c_w + c_load)          // fs (ohm*fF)
                      + 0.38 * r_w * c_w
                      + r_w * c_load;
    return d_fs * 1e-3; // ohm*fF = fs -> ps
}

double
WireModel::unrepeatedDelay(double len_mm, WireLayer layer) const
{
    // Default driver: 64x inverter.
    return unrepeatedDelay(len_mm, layer, tech_.rInv / 64.0, 0.0);
}

double
WireModel::repeatedDelayPerMm(WireLayer layer) const
{
    const double r0c0 = tech_.rInv * tech_.cInv;        // ohm*fF = fs
    const double rc = rPerMm(layer) * cPerMm(layer);    // fs/mm^2
    // Classic optimal-repeater delay/length (Bakoglu):
    //   2 * sqrt(R0 C0 r c (1 + pInv))
    const double d_fs = 2.0 * std::sqrt(r0c0 * rc * (1.0 + tech_.pInv));
    return d_fs * 1e-3; // ps/mm
}

double
WireModel::repeatedDelay(double len_mm, WireLayer layer) const
{
    return repeatedDelayPerMm(layer) * len_mm;
}

double
WireModel::repeatedDelayLoaded(double len_mm, WireLayer layer,
                               double load_ff_per_mm) const
{
    const double c = cPerMm(layer);
    const double scale = std::sqrt((c + load_ff_per_mm) / c);
    return repeatedDelayPerMm(layer) * scale * len_mm;
}

double
WireModel::wireEnergy(double len_mm, WireLayer layer, bool repeated) const
{
    double c_total = cPerMm(layer) * len_mm;            // fF
    if (repeated) {
        // Optimal repeaters add roughly half the wire capacitance again
        // in device capacitance.
        c_total *= 1.5;
    }
    return tech_.switchEnergy(c_total);
}

} // namespace th
