/**
 * @file
 * RC wire delay and energy models: unrepeated (Elmore) and optimally
 * repeated wires on intermediate and global metal layers.
 */

#ifndef TH_CIRCUIT_WIRE_H
#define TH_CIRCUIT_WIRE_H

#include "circuit/technology.h"

namespace th {

/** Which metal layer a wire is routed on. */
enum class WireLayer { Intermediate, Global };

/**
 * Analytical wire model over a Technology.
 *
 * Delays are in picoseconds, lengths in millimetres, energies in
 * picojoules per full-swing transition.
 */
class WireModel
{
  public:
    explicit WireModel(const Technology &tech);

    /**
     * Elmore delay of an unrepeated wire of length @p len_mm driven by a
     * driver of resistance @p r_drv (ohm) into a load of @p c_load (fF).
     * Uses the 0.38*R*C distributed-wire factor.
     */
    double unrepeatedDelay(double len_mm, WireLayer layer,
                           double r_drv, double c_load) const;

    /** Unrepeated delay with a default (64x inverter) driver, no load. */
    double unrepeatedDelay(double len_mm, WireLayer layer) const;

    /**
     * Delay of an optimally repeated wire of length @p len_mm:
     * 2 * sqrt(R0 * C0 * r * c * (1 + pInv)) per unit length.
     */
    double repeatedDelay(double len_mm, WireLayer layer) const;

    /** Delay per mm of optimally repeated wire on @p layer (ps/mm). */
    double repeatedDelayPerMm(WireLayer layer) const;

    /**
     * Repeated-wire delay for a bus loaded with distributed gate
     * capacitance of @p load_ff_per_mm fF/mm (e.g. comparator inputs on
     * a tag broadcast bus, operand latches on a bypass bus).
     */
    double repeatedDelayLoaded(double len_mm, WireLayer layer,
                               double load_ff_per_mm) const;

    /**
     * Energy to switch a wire of length @p len_mm full swing, including
     * repeater input capacitance overhead for repeated wires (pJ).
     */
    double wireEnergy(double len_mm, WireLayer layer,
                      bool repeated = true) const;

    /** Wire resistance per mm for @p layer. */
    double rPerMm(WireLayer layer) const;

    /** Wire capacitance per mm for @p layer. */
    double cPerMm(WireLayer layer) const;

    const Technology &tech() const { return tech_; }

  private:
    const Technology &tech_;
};

} // namespace th

#endif // TH_CIRCUIT_WIRE_H
