#include "circuit/technology.h"

namespace th {

const Technology &
defaultTech()
{
    static const Technology tech{};
    return tech;
}

} // namespace th
