/**
 * @file
 * Logical-effort delay estimation for gate chains (decoders, muxes,
 * priority/select logic).
 */

#ifndef TH_CIRCUIT_LOGICAL_EFFORT_H
#define TH_CIRCUIT_LOGICAL_EFFORT_H

#include "circuit/technology.h"

namespace th {

/** Logical effort constants for common gates. */
namespace le {

/** Logical effort g of a NAND with @p inputs inputs. */
double nandEffort(int inputs);

/** Logical effort g of a NOR with @p inputs inputs. */
double norEffort(int inputs);

/** Parasitic delay p of an n-input gate (in tau units). */
double parasitic(int inputs);

} // namespace le

/**
 * Delay estimator for a logic path characterised by its total path
 * effort. Given path effort F (product of logical efforts, branching
 * efforts, and electrical effort), the optimal N-stage delay is
 * N * F^(1/N) + P.
 */
class LogicPath
{
  public:
    explicit LogicPath(const Technology &tech);

    /**
     * Minimum delay (ps) of a path with path effort @p path_effort and
     * total parasitic @p parasitic_tau, choosing the optimal number of
     * stages (stage effort ~4).
     */
    double optimalDelay(double path_effort, double parasitic_tau) const;

    /**
     * Delay (ps) with a fixed stage count @p stages.
     */
    double fixedStageDelay(double path_effort, int stages,
                           double parasitic_tau) const;

    /**
     * Delay of a full row decoder for @p rows entries driving a
     * wordline load of @p c_load_ff fF: predecode + final NOR + driver.
     */
    double decoderDelay(int rows, double c_load_ff) const;

    /** Energy (pJ) of a decode operation for @p rows entries. */
    double decoderEnergy(int rows) const;

    const Technology &tech() const { return tech_; }

  private:
    const Technology &tech_;
};

} // namespace th

#endif // TH_CIRCUIT_LOGICAL_EFFORT_H
