/**
 * @file
 * 65nm technology parameters for the analytical circuit models.
 *
 * The paper used HSpice with Predictive Technology Models (65nm) and
 * Intel 130nm wire parameters extrapolated to 65nm. We substitute an
 * analytical logical-effort + RC model whose parameters are set to
 * representative 65nm values. Absolute picosecond numbers are best-effort;
 * the quantity the paper's Table 2 cares about — the *relative* 2D vs 3D
 * latency, driven by the wire/gate delay split — is what these models are
 * built to capture.
 */

#ifndef TH_CIRCUIT_TECHNOLOGY_H
#define TH_CIRCUIT_TECHNOLOGY_H

namespace th {

/**
 * Process/technology constants. All delays in picoseconds, lengths in
 * millimetres, capacitances in femtofarads, resistances in ohms,
 * energies in picojoules, voltages in volts.
 */
struct Technology
{
    /** Supply voltage (V). 65nm nominal. */
    double vdd = 1.1;

    /** Logical-effort time unit tau (ps): delay = tau * (p + g*h). */
    double tau = 5.0;

    /** Parasitic delay of an inverter, in units of tau. */
    double pInv = 1.0;

    /** FO4 inverter delay (ps); derived as tau * (pInv + 4). */
    double fo4() const { return tau * (pInv + 4.0); }

    /** Minimum-size inverter output resistance (ohm). */
    double rInv = 12000.0;

    /** Minimum-size inverter input capacitance (fF). */
    double cInv = 0.10;

    /** Intermediate-layer wire resistance per mm (ohm/mm). */
    double wireRInt = 900.0;

    /** Intermediate-layer wire capacitance per mm (fF/mm). */
    double wireCInt = 220.0;

    /** Global-layer wire resistance per mm (ohm/mm). */
    double wireRGlob = 250.0;

    /** Global-layer wire capacitance per mm (fF/mm). */
    double wireCGlob = 270.0;

    /**
     * Die-to-die via traversal delay (ps) for one face-to-face
     * interface. Prior work reports this under one FO4; the vias are
     * ~5um long with ~1um pitch.
     */
    double d2dViaDelay = 3.0;

    /** Die-to-die via capacitance (fF) — loads the driver per crossing. */
    double d2dViaCap = 2.0;

    /**
     * Backside (back-to-back) via traversal delay (ps); ~20um through
     * thinned silicon, a little slower than the f2f face.
     */
    double b2bViaDelay = 6.0;

    /** 6T SRAM cell width (mm). ~0.9um at 65nm for a robust cell. */
    double sramCellW = 0.0009;

    /** 6T SRAM cell height (mm). */
    double sramCellH = 0.0007;

    /** Extra cell pitch per additional port (fraction of base size). */
    double portPitchFactor = 0.45;

    /** Bitline capacitance contributed per cell (fF). */
    double cBitlineCell = 0.35;

    /** Wordline capacitance contributed per cell (two access gates, fF). */
    double cWordlineCell = 0.25;

    /** Bitline swing fraction of VDD needed before the sense amp fires. */
    double bitlineSwing = 0.12;

    /** SRAM cell read drive current (uA). */
    double cellDriveUa = 75.0;

    /** Sense amplifier delay (ps). */
    double senseAmpDelay = 20.0;

    /** Sense amplifier energy per fired column (pJ). */
    double senseAmpEnergy = 0.004;

    /** Datapath bit pitch (mm/bit) for ALUs and bypass buses. */
    double bitPitch = 0.0032;

    /** Average switching activity factor used for energy estimates. */
    double activityFactor = 0.5;

    /** Energy of charging capacitance C (fF) over full swing (pJ). */
    double switchEnergy(double c_ff) const
    {
        return 1e-3 * c_ff * vdd * vdd; // fF * V^2 -> fJ; /1000 -> pJ
    }
};

/** The default 65nm technology used throughout the evaluation. */
const Technology &defaultTech();

} // namespace th

#endif // TH_CIRCUIT_TECHNOLOGY_H
