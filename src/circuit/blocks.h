/**
 * @file
 * Assembly of the per-block circuit models into the paper's Table 2:
 * 2D vs 3D latency for each major processor block, the critical-loop
 * clock-frequency solver, and the per-access energy table consumed by
 * the power model.
 */

#ifndef TH_CIRCUIT_BLOCKS_H
#define TH_CIRCUIT_BLOCKS_H

#include <string>
#include <vector>

#include "circuit/technology.h"

namespace th {

/** One row of Table 2. */
struct BlockTiming
{
    std::string name;
    double lat2dPs = 0.0;
    double lat3dPs = 0.0;
    bool critical = false; ///< Highlighted (bold) in the paper's table.

    /** Fractional latency improvement, e.g. 0.32 for -32%. */
    double improvement() const { return 1.0 - lat3dPs / lat2dPs; }
};

/**
 * Per-access energies (pJ) for every modelled core structure, for one
 * implementation style (planar or 4-die stacked).
 *
 * "Low" variants are accesses where Thermal Herding confines activity
 * to the top die; in the planar implementation low == full since there
 * is no partitioning to exploit. Callers combine these with activity
 * counts from the core model and the clock frequency to get watts.
 */
struct CoreEnergies
{
    double rfReadLow = 0.0, rfReadFull = 0.0;
    double rfWriteLow = 0.0, rfWriteFull = 0.0;
    double aluLow = 0.0, aluFull = 0.0;
    double shiftLow = 0.0, shiftFull = 0.0;
    double multLow = 0.0, multFull = 0.0;
    double fpOp = 0.0;
    double bypassLow = 0.0, bypassFull = 0.0;
    double schedWakeupPerDie = 0.0; ///< Tag broadcast on one die.
    double schedSelect = 0.0;
    double schedAlloc = 0.0;
    double lsqSearchLow = 0.0, lsqSearchFull = 0.0;
    double lsqWrite = 0.0;
    double dl1ReadLow = 0.0, dl1ReadFull = 0.0;
    double dl1WriteLow = 0.0, dl1WriteFull = 0.0;
    double dl1Fill = 0.0;
    double il1Access = 0.0;
    double itlbAccess = 0.0, dtlbAccess = 0.0;
    double btbLow = 0.0, btbFull = 0.0;
    double bpredLookup = 0.0, bpredUpdate = 0.0;
    double robReadLow = 0.0, robReadFull = 0.0;
    double robWriteLow = 0.0, robWriteFull = 0.0;
    double decodeUop = 0.0, renameUop = 0.0;
    double l2Access = 0.0;
    /**
     * Catch-all per-uop energy for random control logic and global
     * wiring not attributable to a named block. Large fraction of real
     * core dynamic power; shrinks strongly in 3D with the compacted
     * floorplan.
     */
    double miscPerUop = 0.0;
};

/**
 * Builds every block's 2D and 3D circuit models and derives Table 2,
 * the achievable clock frequencies, and the energy tables.
 */
class BlockLibrary
{
  public:
    explicit BlockLibrary(const Technology &tech = defaultTech());

    /** All Table 2 rows. */
    const std::vector<BlockTiming> &table2() const { return table_; }

    /** Look up a row by name; nullptr when absent. */
    const BlockTiming *find(const std::string &name) const;

    /** Cycle time of the planar design (ps): max of the critical loops. */
    double clockPeriod2dPs() const { return period_2d_; }

    /** Cycle time of the 3D design (ps). */
    double clockPeriod3dPs() const { return period_3d_; }

    /** Frequency ratio 3D/2D (paper: 1.479). */
    double frequencyGain() const { return period_2d_ / period_3d_; }

    /** Planar clock frequency (GHz); the paper's baseline is 2.66. */
    double frequency2dGhz() const { return base_freq_ghz_; }

    /** 3D clock frequency (GHz); the paper reports 3.93. */
    double frequency3dGhz() const
    {
        return base_freq_ghz_ * frequencyGain();
    }

    /** Energy table for the planar implementation. */
    const CoreEnergies &energies2d() const { return energies_2d_; }

    /** Energy table for the 4-die stacked implementation. */
    const CoreEnergies &energies3d() const { return energies_3d_; }

    const Technology &tech() const { return tech_; }

  private:
    void build();

    const Technology &tech_;
    std::vector<BlockTiming> table_;
    double period_2d_ = 0.0;
    double period_3d_ = 0.0;
    double base_freq_ghz_ = 2.66;
    CoreEnergies energies_2d_;
    CoreEnergies energies_3d_;
};

/**
 * Model of the scheduler wakeup-select loop (the frequency-critical
 * loop in the paper). Exposed separately for unit testing.
 */
struct SchedulerLoop
{
    /**
     * @param entries  RS entries spanned by the tag broadcast.
     * @param stacked  True for the 4-die entry-stacked organisation.
     * @param tech     Technology parameters.
     * @return Loop latency in ps.
     */
    static double latencyPs(int entries, bool stacked,
                            const Technology &tech = defaultTech());
};

} // namespace th

#endif // TH_CIRCUIT_BLOCKS_H
