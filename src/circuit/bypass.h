/**
 * @file
 * Bypass network wire model (Section 3.3 / Figure 5): the result bus
 * that forwards ALU outputs back to consumer inputs across the
 * execution cluster. The 3D word-partitioned organisation reduces both
 * the width and height of the bypass network to a quarter of their
 * planar sizes.
 */

#ifndef TH_CIRCUIT_BYPASS_H
#define TH_CIRCUIT_BYPASS_H

#include "circuit/technology.h"
#include "circuit/wire.h"

namespace th {

/** Timing/energy of one bypass traversal. */
struct BypassResult
{
    double wireDelay = 0.0; ///< Result-bus flight time (ps).
    double muxDelay = 0.0;  ///< Operand-select mux at the consumer (ps).
    double viaDelay = 0.0;  ///< d2d hops (3D only, ps).

    double total() const { return wireDelay + muxDelay + viaDelay; }

    double energyFull = 0.0; ///< 64-bit broadcast energy (pJ).
    double energyLow = 0.0;  ///< 16-bit (top-die-only) broadcast (pJ).
};

/** Geometry of the execution cluster the bypass bus spans. */
struct BypassParams
{
    int funcUnits = 7;       ///< FUs spanned (3 ALU, 2 shift, mult, mem).
    double fuHeightMm = 0.26; ///< Planar height of one FU row (mm).
    int busWidthBits = 64;   ///< Datapath width.
    int bypassSources = 6;   ///< Mux fan-in at each operand port.
};

/** Analytical bypass network model. */
class BypassModel
{
  public:
    explicit BypassModel(const BypassParams &params = BypassParams{},
                         const Technology &tech = defaultTech());

    /** Planar bypass network. */
    BypassResult planar() const;

    /**
     * 4-die stacked bypass: per-die datapath slices compact the
     * cluster so the bus length drops to roughly a quarter.
     */
    BypassResult stacked() const;

    const BypassParams &params() const { return params_; }

  private:
    BypassResult evaluate(double len_mm, int width_bits, int vias) const;

    BypassParams params_;
    const Technology &tech_;
    WireModel wires_;
};

} // namespace th

#endif // TH_CIRCUIT_BYPASS_H
