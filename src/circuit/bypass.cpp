#include "circuit/bypass.h"

#include <cmath>

#include "circuit/logical_effort.h"
#include "common/types.h"

namespace th {

BypassModel::BypassModel(const BypassParams &params, const Technology &tech)
    : params_(params), tech_(tech), wires_(tech)
{
}

BypassResult
BypassModel::evaluate(double len_mm, int width_bits, int vias) const
{
    BypassResult r;
    r.wireDelay = wires_.repeatedDelay(len_mm, WireLayer::Intermediate);
    r.viaDelay = static_cast<double>(vias) * tech_.d2dViaDelay;

    LogicPath logic(tech_);
    // Operand-select mux: fan-in sources, one-hot select.
    const double effort =
        static_cast<double>(params_.bypassSources) * 1.5;
    r.muxDelay = logic.fixedStageDelay(effort, 2, 2.0);

    const double e_per_bit =
        wires_.wireEnergy(len_mm, WireLayer::Intermediate, true);
    r.energyFull = tech_.activityFactor * e_per_bit *
        static_cast<double>(width_bits);
    r.energyLow = tech_.activityFactor * e_per_bit *
        static_cast<double>(kBitsPerDie);
    return r;
}

BypassResult
BypassModel::planar() const
{
    const double len =
        static_cast<double>(params_.funcUnits) * params_.fuHeightMm;
    BypassResult r = evaluate(len, params_.busWidthBits, 0);
    // Planar: low-width operands still swing the full 64-bit bus (no
    // partitioning), so low == full.
    r.energyLow = r.energyFull;
    return r;
}

BypassResult
BypassModel::stacked() const
{
    // Figure 5(b): width and height both reduced to ~1/4; the bus
    // traverses the compacted cluster plus up to two d2d hops for
    // cross-slice control.
    const double len =
        static_cast<double>(params_.funcUnits) * params_.fuHeightMm / 4.0;
    return evaluate(len, params_.busWidthBits, 2);
}

} // namespace th
