/**
 * @file
 * Analytical SRAM array timing/energy model (CACTI-style decomposition:
 * decode, wordline, bitline, sense, output) with 3D die-stacked
 * partitioning variants as proposed for 3D caches, register files, and
 * other processor arrays.
 */

#ifndef TH_CIRCUIT_SRAM_H
#define TH_CIRCUIT_SRAM_H

#include "circuit/logical_effort.h"
#include "circuit/technology.h"
#include "circuit/wire.h"

namespace th {

/**
 * How an array is folded onto the 4-die stack.
 *
 * - None: planar (single-die) implementation.
 * - WordSlice: each die holds a 16-bit significance slice of every
 *   entry (the Thermal Herding datapath partition); wordlines shrink 4x.
 * - RowSlice: each die holds a quarter of the entries (the
 *   entry-stacked scheduler partition); bitlines shrink 4x.
 * - Quad: rows and columns each halved (generic 3D array fold used for
 *   caches); both wordline and bitline shrink 2x.
 */
enum class Partition3D { None, WordSlice, RowSlice, Quad };

/** Static parameters of one SRAM array. */
struct SramParams
{
    int entries = 64;        ///< Logical entries (rows before muxing).
    int bitsPerEntry = 64;   ///< Data bits per entry.
    int readPorts = 1;       ///< Simultaneous read ports.
    int writePorts = 1;      ///< Simultaneous write ports.
    int columnMux = 1;       ///< Column multiplexing degree.
    /**
     * Extra repeated global routing to/from the array edge (mm) in the
     * planar layout, e.g. H-tree segments for banked caches.
     */
    double routeLenMm = 0.0;
};

/** Per-phase timing breakdown of one array access (ps). */
struct ArrayTiming
{
    double decode = 0.0;
    double wordline = 0.0;
    double bitline = 0.0;
    double sense = 0.0;
    double output = 0.0;
    double route = 0.0;
    double via = 0.0;

    double total() const
    {
        return decode + wordline + bitline + sense + output + route + via;
    }
};

/** Per-access energies (pJ). */
struct ArrayEnergy
{
    double read = 0.0;
    double write = 0.0;
};

/**
 * Analytical model of one SRAM array, planar or folded across the
 * 4-die stack.
 */
class SramArray
{
  public:
    SramArray(const SramParams &params, Partition3D part,
              const Technology &tech = defaultTech());

    /** Timing of a read access through the critical path. */
    ArrayTiming readTiming() const;

    /** Total read latency (ps). */
    double readLatency() const { return readTiming().total(); }

    /** Energy per read/write access of the whole entry width (pJ). */
    ArrayEnergy accessEnergy() const;

    /**
     * Energy of reading/writing only the top-die 16-bit slice (pJ).
     * Only meaningful for WordSlice partitioning; for other partitions
     * this returns the full access energy.
     */
    ArrayEnergy topSliceEnergy() const;

    /** Physical rows per die after folding. */
    int physRows() const { return phys_rows_; }

    /** Physical columns (bit cells per row) per die after folding. */
    int physCols() const { return phys_cols_; }

    /** Footprint of one die's slice (mm^2). */
    double sliceArea() const;

    const SramParams &params() const { return params_; }
    Partition3D partition() const { return part_; }

  private:
    /** Cell pitch scaled for port count (mm). */
    double cellW() const;
    double cellH() const;
    /** Number of d2d interface crossings on the critical path. */
    int viaCrossings() const;
    /** Energy of an access covering @p cols columns and current rows. */
    double accessEnergyCols(int cols, bool write) const;

    SramParams params_;
    Partition3D part_;
    const Technology &tech_;
    WireModel wires_;
    LogicPath logic_;
    int phys_rows_;
    int phys_cols_;
    double route_len_;
};

} // namespace th

#endif // TH_CIRCUIT_SRAM_H
