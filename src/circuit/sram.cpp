#include "circuit/sram.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/log.h"

namespace th {

namespace {

/**
 * Maximum cells on one wordline or bitline segment before the layout
 * inserts segment muxes / hierarchical drivers. Standard practice for
 * arrays of any size; keeps segment RC bounded.
 */
constexpr int kMaxSegmentCells = 256;

/** Extra delay factor per doubling beyond the segment cap. */
constexpr double kSegmentPenalty = 0.10;

/** Segment-select mux delay when segmentation kicks in (ps). */
constexpr double kSegmentMuxDelay = 12.0;

/** Hierarchical (divided) bitline factor for word-sliced 3D arrays. */
constexpr int kDividedBitlineFactor = 2;

} // namespace

SramArray::SramArray(const SramParams &params, Partition3D part,
                     const Technology &tech)
    : params_(params), part_(part), tech_(tech), wires_(tech), logic_(tech)
{
    if (params_.entries < 1 || params_.bitsPerEntry < 1)
        fatal("SramArray requires positive entries/bits (got %d x %d)",
              params_.entries, params_.bitsPerEntry);

    int rows = std::max(1, params_.entries / std::max(1, params_.columnMux));
    int cols = params_.bitsPerEntry * std::max(1, params_.columnMux);

    route_len_ = params_.routeLenMm;
    switch (part_) {
      case Partition3D::None:
        break;
      case Partition3D::WordSlice:
        // Each die holds a 16-bit significance slice of every entry.
        // Wordlines shrink 4x; the area freed by the short wordlines
        // is spent on hierarchical (divided) bitlines.
        cols = std::max(1, cols / kNumDies);
        route_len_ *= 0.5;
        break;
      case Partition3D::RowSlice:
        rows = std::max(1, rows / kNumDies);
        route_len_ *= 0.5;
        break;
      case Partition3D::Quad:
        rows = std::max(1, rows / 2);
        cols = std::max(1, cols / 2);
        route_len_ *= 0.5;
        break;
    }
    phys_rows_ = rows;
    phys_cols_ = cols;
}

double
SramArray::cellW() const
{
    const int ports = params_.readPorts + params_.writePorts;
    return tech_.sramCellW *
        (1.0 + tech_.portPitchFactor * static_cast<double>(ports - 1));
}

double
SramArray::cellH() const
{
    const int ports = params_.readPorts + params_.writePorts;
    return tech_.sramCellH *
        (1.0 + tech_.portPitchFactor * static_cast<double>(ports - 1));
}

int
SramArray::viaCrossings() const
{
    // Signals broadcast/merge through the stack in parallel; the
    // critical path sees the distribution and the collection hop.
    return part_ == Partition3D::None ? 0 : 2;
}

ArrayTiming
SramArray::readTiming() const
{
    ArrayTiming t;

    // --- Wordline: segmented at kMaxSegmentCells. ---
    const int wl_cells = std::min(phys_cols_, kMaxSegmentCells);
    const double wl_len = static_cast<double>(wl_cells) * cellW();
    const double wl_cap =
        static_cast<double>(wl_cells) * tech_.cWordlineCell +
        wires_.cPerMm(WireLayer::Intermediate) * wl_len;

    t.decode = logic_.decoderDelay(phys_rows_, wl_cap);

    const double r_wl = wires_.rPerMm(WireLayer::Intermediate) * wl_len;
    const double r_drv = tech_.rInv / 32.0;
    t.wordline = (r_drv * wl_cap + 0.38 * r_wl * wl_cap) * 1e-3;
    if (phys_cols_ > kMaxSegmentCells) {
        const double doublings =
            std::log2(static_cast<double>(phys_cols_) /
                      static_cast<double>(kMaxSegmentCells));
        t.wordline *= 1.0 + kSegmentPenalty * doublings;
        t.wordline += kSegmentMuxDelay;
    }

    // --- Bitline: segmented; divided further for word-sliced 3D. ---
    int bl_cells = std::min(phys_rows_, kMaxSegmentCells);
    if (part_ == Partition3D::WordSlice)
        bl_cells = std::max(1, bl_cells / kDividedBitlineFactor);
    const double bl_len = static_cast<double>(bl_cells) * cellH();
    const double bl_cap =
        static_cast<double>(bl_cells) * tech_.cBitlineCell +
        wires_.cPerMm(WireLayer::Intermediate) * bl_len;
    const double dv = tech_.bitlineSwing * tech_.vdd;
    t.bitline = 1e3 * bl_cap * dv / tech_.cellDriveUa;
    if (phys_rows_ > kMaxSegmentCells) {
        const double doublings =
            std::log2(static_cast<double>(phys_rows_) /
                      static_cast<double>(kMaxSegmentCells));
        t.bitline *= 1.0 + kSegmentPenalty * doublings;
        t.bitline += kSegmentMuxDelay;
    }

    t.sense = tech_.senseAmpDelay;

    const double mux_effort =
        std::max(1.0, static_cast<double>(params_.columnMux)) * 2.0;
    t.output = logic_.optimalDelay(mux_effort, 2.0 * tech_.pInv);

    if (route_len_ > 0.0)
        t.route = wires_.repeatedDelay(route_len_, WireLayer::Global);

    t.via = static_cast<double>(viaCrossings()) * tech_.d2dViaDelay;

    return t;
}

double
SramArray::accessEnergyCols(int cols, bool write) const
{
    // Only the selected wordline segment fires.
    const int wl_cells = std::min(cols, kMaxSegmentCells);
    const double wl_len = static_cast<double>(wl_cells) * cellW();
    const double wl_cap =
        static_cast<double>(wl_cells) * tech_.cWordlineCell +
        wires_.cPerMm(WireLayer::Intermediate) * wl_len;

    double e = logic_.decoderEnergy(phys_rows_);
    e += tech_.switchEnergy(wl_cap);

    int bl_cells = std::min(phys_rows_, kMaxSegmentCells);
    if (part_ == Partition3D::WordSlice)
        bl_cells = std::max(1, bl_cells / kDividedBitlineFactor);
    const double bl_len = static_cast<double>(bl_cells) * cellH();
    const double bl_cap_per_col =
        static_cast<double>(bl_cells) * tech_.cBitlineCell +
        wires_.cPerMm(WireLayer::Intermediate) * bl_len;

    if (write) {
        e += 2.0 * tech_.switchEnergy(bl_cap_per_col) *
            static_cast<double>(cols);
    } else {
        e += tech_.bitlineSwing * tech_.switchEnergy(bl_cap_per_col) *
            static_cast<double>(cols);
        e += tech_.senseAmpEnergy * static_cast<double>(cols);
    }

    if (route_len_ > 0.0) {
        // Data + address distribution on the routing tree.
        e += wires_.wireEnergy(route_len_, WireLayer::Global) *
            static_cast<double>(std::min(cols, 64)) * 0.5;
    }

    e += tech_.switchEnergy(tech_.d2dViaCap) *
        static_cast<double>(viaCrossings() * std::min(cols, 64)) * 0.25;

    return e;
}

ArrayEnergy
SramArray::accessEnergy() const
{
    ArrayEnergy e;
    const int cols_per_access =
        std::max(1, phys_cols_ / std::max(1, params_.columnMux));

    switch (part_) {
      case Partition3D::None:
      case Partition3D::Quad:
        // Quad: two dies hold the selected row's halves, but each
        // fires half the columns — net cell energy comparable, route
        // halved (already in route_len_).
        e.read = accessEnergyCols(cols_per_access, false);
        e.write = accessEnergyCols(cols_per_access, true);
        if (part_ == Partition3D::Quad) {
            e.read *= 2.0;
            e.write *= 2.0;
        }
        break;
      case Partition3D::WordSlice:
        // All four dies fire their 16-bit slice on a full access.
        e.read = accessEnergyCols(cols_per_access, false) *
            static_cast<double>(kNumDies);
        e.write = accessEnergyCols(cols_per_access, true) *
            static_cast<double>(kNumDies);
        break;
      case Partition3D::RowSlice:
        // One die has the entry; the others burn decode energy only.
        e.read = accessEnergyCols(cols_per_access, false) +
            static_cast<double>(kNumDies - 1) *
                logic_.decoderEnergy(phys_rows_);
        e.write = accessEnergyCols(cols_per_access, true) +
            static_cast<double>(kNumDies - 1) *
                logic_.decoderEnergy(phys_rows_);
        break;
    }
    return e;
}

ArrayEnergy
SramArray::topSliceEnergy() const
{
    if (part_ != Partition3D::WordSlice)
        return accessEnergy();
    ArrayEnergy e;
    const int cols_per_access =
        std::max(1, phys_cols_ / std::max(1, params_.columnMux));
    e.read = accessEnergyCols(cols_per_access, false);
    e.write = accessEnergyCols(cols_per_access, true);
    return e;
}

double
SramArray::sliceArea() const
{
    return static_cast<double>(phys_rows_) * cellH() *
           static_cast<double>(phys_cols_) * cellW();
}

} // namespace th
