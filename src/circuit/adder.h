/**
 * @file
 * Kogge-Stone tree adder timing/energy model, planar and
 * significance-partitioned across the 4-die stack (Section 3.2 /
 * Figure 4 of the paper).
 */

#ifndef TH_CIRCUIT_ADDER_H
#define TH_CIRCUIT_ADDER_H

#include "circuit/technology.h"
#include "circuit/wire.h"

namespace th {

/** Timing/energy results for one adder configuration. */
struct AdderResult
{
    double gateDelay = 0.0; ///< Carry-tree logic delay (ps).
    double wireDelay = 0.0; ///< Intra-tree lateral wire delay (ps).
    double viaDelay = 0.0;  ///< d2d crossings on the carry path (ps).

    double total() const { return gateDelay + wireDelay + viaDelay; }

    double energyFull = 0.0; ///< Energy of a 64-bit add (pJ).
    double energyLow = 0.0;  ///< Energy with upper 48 bits gated (pJ).
};

/**
 * Model of a @p bits wide Kogge-Stone adder.
 *
 * The planar adder's upper carry-merge levels span long lateral wires
 * (the level-k merge reaches back 2^k bit positions). Folding the
 * datapath into 16-bit significance slices per die converts the longest
 * lateral spans into short vertical d2d hops, trimming only the last
 * tree levels — which is why the paper attributes just 3 points of the
 * 36% ALU+bypass improvement to the adder itself.
 */
class AdderModel
{
  public:
    explicit AdderModel(int bits = 64,
                        const Technology &tech = defaultTech());

    /** Planar (2D) implementation. */
    AdderResult planar() const;

    /** 4-die word-partitioned (16 bits/die) implementation. */
    AdderResult stacked() const;

  private:
    AdderResult evaluate(bool stacked) const;

    int bits_;
    const Technology &tech_;
    WireModel wires_;
};

} // namespace th

#endif // TH_CIRCUIT_ADDER_H
