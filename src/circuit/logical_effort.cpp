#include "circuit/logical_effort.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/log.h"

namespace th {

namespace le {

double
nandEffort(int inputs)
{
    return (static_cast<double>(inputs) + 2.0) / 3.0;
}

double
norEffort(int inputs)
{
    return (2.0 * static_cast<double>(inputs) + 1.0) / 3.0;
}

double
parasitic(int inputs)
{
    return static_cast<double>(inputs);
}

} // namespace le

LogicPath::LogicPath(const Technology &tech)
    : tech_(tech)
{
}

double
LogicPath::optimalDelay(double path_effort, double parasitic_tau) const
{
    if (path_effort < 1.0)
        path_effort = 1.0;
    // Optimal stage count for stage effort ~3.6.
    int stages = std::max(1, static_cast<int>(
        std::lround(std::log(path_effort) / std::log(3.6))));
    return fixedStageDelay(path_effort, stages, parasitic_tau);
}

double
LogicPath::fixedStageDelay(double path_effort, int stages,
                           double parasitic_tau) const
{
    if (stages < 1)
        panic("LogicPath stage count must be >= 1 (got %d)", stages);
    if (path_effort < 1.0)
        path_effort = 1.0;
    const double stage_effort =
        std::pow(path_effort, 1.0 / static_cast<double>(stages));
    return tech_.tau *
        (static_cast<double>(stages) * stage_effort + parasitic_tau);
}

double
LogicPath::decoderDelay(int rows, double c_load_ff) const
{
    if (rows < 2)
        return tech_.tau * 2.0;
    const int bits = log2Exact(nextPow2(static_cast<std::uint64_t>(rows)));
    // Two predecode levels (3-bit NAND groups) + final NOR + wordline
    // driver. Path logical effort ~ product of gate efforts; branching
    // = rows fanned out from the address drivers.
    const double g_path = le::nandEffort(3) * le::norEffort(2) * 1.0;
    const double branch = static_cast<double>(rows) / 2.0;
    const double h_elec = std::max(1.0, c_load_ff / (tech_.cInv * 16.0));
    const double f = g_path * branch * h_elec;
    const double p = le::parasitic(3) + le::parasitic(2) +
        2.0 * tech_.pInv + 0.5 * static_cast<double>(bits);
    return optimalDelay(f, p);
}

double
LogicPath::decoderEnergy(int rows) const
{
    if (rows < 2)
        return 0.0;
    const int bits = log2Exact(nextPow2(static_cast<std::uint64_t>(rows)));
    // Address drivers + predecode wires + one fired final gate per
    // access; scales with rows for the predecode fanout wiring.
    const double c_ff = tech_.cInv *
        (8.0 * static_cast<double>(bits) +
         0.4 * static_cast<double>(rows));
    return tech_.switchEnergy(c_ff);
}

} // namespace th
