#include "circuit/adder.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/types.h"

namespace th {

AdderModel::AdderModel(int bits, const Technology &tech)
    : bits_(bits), tech_(tech), wires_(tech)
{
}

AdderResult
AdderModel::evaluate(bool stacked) const
{
    AdderResult r;
    const int levels = log2Exact(nextPow2(static_cast<std::uint64_t>(bits_)));

    // PG setup (1 stage), one compound carry-merge gate per level,
    // final sum XOR. Aggressive (domino-style) merge cells at 3 tau.
    const double gates_tau =
        4.0 +                                          // pg: xor-ish
        static_cast<double>(levels) * 3.0 +            // merge cells
        4.0;                                           // sum xor
    r.gateDelay = tech_.tau * gates_tau;

    // Lateral wires: the merge at level k spans 2^(k-1) bit pitches.
    // In the stacked organisation only spans within one 16-bit slice
    // remain lateral; longer spans become d2d via hops.
    const int slice_bits = stacked ? kBitsPerDie : bits_;
    double wire_mm = 0.0;
    int via_hops = 0;
    for (int k = 1; k <= levels; ++k) {
        const int span = 1 << (k - 1);
        if (span <= slice_bits) {
            wire_mm += static_cast<double>(span) * tech_.bitPitch;
        } else {
            // Crossing to another die: lateral span within slice plus a
            // via hop per die boundary crossed.
            wire_mm += static_cast<double>(slice_bits) * tech_.bitPitch;
            via_hops += 1;
        }
    }
    r.wireDelay = wires_.unrepeatedDelay(wire_mm, WireLayer::Intermediate,
                                         tech_.rInv / 16.0, tech_.cInv * 8.0);
    r.viaDelay = static_cast<double>(via_hops) * tech_.d2dViaDelay;

    // Energy: proportional to cell count (bits * levels) plus wires.
    const double cell_cap = tech_.cInv * 6.0;
    const double cells =
        static_cast<double>(bits_) * static_cast<double>(levels + 2);
    const double total_wire_mm =
        wire_mm * static_cast<double>(bits_) * 0.5;
    r.energyFull = tech_.activityFactor *
        (tech_.switchEnergy(cell_cap * cells) +
         wires_.wireEnergy(total_wire_mm, WireLayer::Intermediate, false));
    // With the upper 48 bits clock-gated only a quarter of the cells
    // and wires switch.
    r.energyLow = r.energyFull * 0.25;
    return r;
}

AdderResult
AdderModel::planar() const
{
    return evaluate(false);
}

AdderResult
AdderModel::stacked() const
{
    return evaluate(true);
}

} // namespace th
