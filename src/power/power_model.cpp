#include "power/power_model.h"

#include "common/log.h"

namespace th {

double
PowerResult::coreDynamicW() const
{
    double t = 0.0;
    for (const auto &b : coreBlocks)
        t += b.total();
    return t;
}

double
PowerResult::topDieFraction() const
{
    double top = l2.dieW[0];
    double all = l2.total();
    for (const auto &b : coreBlocks) {
        top += b.dieW[0] * numCores;
        all += b.total() * numCores;
    }
    return all > 0.0 ? top / all : 0.0;
}

PowerModel::PowerModel(const BlockLibrary &lib, const PowerConfig &cfg)
    : lib_(lib), cfg_(cfg)
{
}

void
PowerModel::calibrate(const CoreResult &baseline_run,
                      const CoreConfig &baseline_cfg)
{
    if (baseline_cfg.stacked)
        fatal("power calibration requires the planar baseline");
    const PowerResult raw = computeRaw(baseline_run, baseline_cfg, 1.0);
    const double target_dyn = cfg_.baselineTotalW *
        (1.0 - cfg_.clockFrac - cfg_.leakFrac);
    if (raw.dynamicW() <= 0.0)
        fatal("baseline run has no dynamic activity to calibrate on");
    dyn_scale_ = target_dyn / raw.dynamicW();
}

PowerResult
PowerModel::compute(const CoreResult &run, const CoreConfig &core_cfg) const
{
    if (!calibrated())
        fatal("PowerModel::compute before calibrate()");
    return computeRaw(run, core_cfg, dyn_scale_);
}

namespace {

/** How a block's accesses spread across the stack. */
enum class Spread {
    Planar,  ///< Everything on die 0 (2D chip).
    Herded,  ///< Low-width on die 0; full-width across all four dies.
    AllDies, ///< Evenly across all four dies.
    TopTwo   ///< Dies 0 and 1 (direction-bit arrays, Section 3.7).
};

void
deposit(BlockPower &bp, Spread spread, double low_w, double full_w)
{
    switch (spread) {
      case Spread::Planar:
        bp.dieW[0] += low_w + full_w;
        break;
      case Spread::Herded:
        bp.dieW[0] += low_w;
        for (int d = 0; d < kNumDies; ++d)
            bp.dieW[d] += full_w / kNumDies;
        break;
      case Spread::AllDies:
        for (int d = 0; d < kNumDies; ++d)
            bp.dieW[d] += (low_w + full_w) / kNumDies;
        break;
      case Spread::TopTwo:
        bp.dieW[0] += (low_w + full_w) / 2.0;
        bp.dieW[1] += (low_w + full_w) / 2.0;
        break;
    }
}

} // namespace

PowerResult
PowerModel::computeRaw(const CoreResult &run, const CoreConfig &core_cfg,
                       double scale) const
{
    const bool stacked = core_cfg.stacked;
    const CoreEnergies &e = stacked ? lib_.energies3d() : lib_.energies2d();
    const ActivityStats &a = run.activity;

    PowerResult r;
    r.numCores = cfg_.numCores;

    // Fixed overheads.
    r.leakW = cfg_.baselineTotalW * cfg_.leakFrac;
    r.clockW = cfg_.baselineTotalW * cfg_.clockFrac *
        (stacked ? cfg_.clock3dScale : 1.0) *
        (core_cfg.freqGhz / cfg_.baseFreqGhz);

    // pJ * count / seconds -> watts: 1e-12 J/pJ.
    const double seconds = run.seconds();
    if (seconds <= 0.0)
        fatal("power computation on an empty run");
    const double to_w = 1e-12 / seconds * scale;

    auto block = [&](BlockId id) -> BlockPower & {
        return r.coreBlocks[static_cast<size_t>(id)];
    };
    const Spread fold = stacked ? Spread::AllDies : Spread::Planar;
    const Spread herd = stacked ? Spread::Herded : Spread::Planar;
    const Spread toptwo = stacked ? Spread::TopTwo : Spread::Planar;

    auto cnt = [](const Counter &c) { return static_cast<double>(c.value()); };

    // Front end.
    deposit(block(BlockId::ICache), fold,
            0.0, cnt(a.il1Access) * e.il1Access * to_w);
    deposit(block(BlockId::Fetch), fold,
            0.0, cnt(a.itlbAccess) * e.itlbAccess * to_w);
    deposit(block(BlockId::BPred), toptwo,
            0.0, cnt(a.bpredLookup) * e.bpredLookup * to_w);
    deposit(block(BlockId::BPred), fold,
            0.0, cnt(a.bpredUpdate) * e.bpredUpdate * to_w);
    deposit(block(BlockId::Btb), herd,
            cnt(a.btbLow) * e.btbLow * to_w,
            cnt(a.btbFull) * e.btbFull * to_w);
    deposit(block(BlockId::Decode), fold,
            0.0, cnt(a.decodeUops) * e.decodeUop * to_w);
    deposit(block(BlockId::Rename), fold,
            0.0, cnt(a.renameUops) * e.renameUop * to_w);

    // Scheduler: per-die tag broadcasts (gated on empty dies), select
    // across the stack, allocation on the die chosen by the policy.
    {
        BlockPower &bp = block(BlockId::Scheduler);
        if (stacked) {
            for (int d = 0; d < kNumDies; ++d) {
                bp.dieW[d] += cnt(a.schedWakeupDie[d]) *
                    e.schedWakeupPerDie * to_w;
                bp.dieW[d] += cnt(a.schedAllocDie[d]) *
                    e.schedAlloc * to_w;
            }
            deposit(bp, Spread::AllDies, 0.0,
                    cnt(a.schedSelect) * e.schedSelect * to_w);
        } else {
            // Planar: every result broadcast drives the whole RS span
            // (4x the per-die slice energy) and cannot gate by die.
            // Broadcast events == issued instructions (schedSelect).
            bp.dieW[0] +=
                (cnt(a.schedSelect) * e.schedWakeupPerDie * kNumDies +
                 cnt(a.schedSelect) * e.schedSelect +
                 cnt(a.schedAlloc) * e.schedAlloc) * to_w;
        }
    }

    // Datapath.
    deposit(block(BlockId::RegFile), herd,
            (cnt(a.rfReadLow) * e.rfReadLow +
             cnt(a.rfWriteLow) * e.rfWriteLow) * to_w,
            (cnt(a.rfReadFull) * e.rfReadFull +
             cnt(a.rfWriteFull) * e.rfWriteFull) * to_w);
    deposit(block(BlockId::Rob), herd,
            (cnt(a.robReadLow) * e.robReadLow +
             cnt(a.robWriteLow) * e.robWriteLow) * to_w,
            (cnt(a.robReadFull) * e.robReadFull +
             cnt(a.robWriteFull) * e.robWriteFull) * to_w);
    deposit(block(BlockId::IntExec), herd,
            (cnt(a.aluLow) * e.aluLow + cnt(a.shiftLow) * e.shiftLow +
             cnt(a.multLow) * e.multLow +
             cnt(a.bypassLow) * e.bypassLow) * to_w,
            (cnt(a.aluFull) * e.aluFull + cnt(a.shiftFull) * e.shiftFull +
             cnt(a.multFull) * e.multFull +
             cnt(a.bypassFull) * e.bypassFull) * to_w);
    deposit(block(BlockId::FpExec), fold,
            0.0, cnt(a.fpOps) * e.fpOp * to_w);

    // Memory pipeline.
    deposit(block(BlockId::Lsq), herd,
            cnt(a.lsqSearchLow) * e.lsqSearchLow * to_w,
            (cnt(a.lsqSearchFull) * e.lsqSearchFull +
             cnt(a.lsqWrite) * e.lsqWrite) * to_w);
    deposit(block(BlockId::Dtlb), fold,
            0.0, cnt(a.dtlbAccess) * e.dtlbAccess * to_w);
    deposit(block(BlockId::DCache), herd,
            (cnt(a.dl1ReadLow) * e.dl1ReadLow +
             cnt(a.dl1WriteLow) * e.dl1WriteLow) * to_w,
            (cnt(a.dl1ReadFull) * e.dl1ReadFull +
             cnt(a.dl1WriteFull) * e.dl1WriteFull +
             cnt(a.dl1Fill) * e.dl1Fill) * to_w);

    // Random logic and global wiring.
    deposit(block(BlockId::MiscLogic), fold,
            0.0, cnt(a.miscUops) * e.miscPerUop * 0.5 * to_w);
    deposit(block(BlockId::CoreBus), fold,
            0.0, cnt(a.miscUops) * e.miscPerUop * 0.5 * to_w);

    // Shared L2 (both symmetric cores contribute).
    deposit(r.l2, fold, 0.0,
            cnt(a.l2Access) * e.l2Access * to_w *
            static_cast<double>(cfg_.numCores));

    return r;
}

} // namespace th
