/**
 * @file
 * Power model: combines per-access energies (circuit models), activity
 * factors (core model), and clock frequency into per-block, per-die
 * watts — the methodology of Section 4 ("for each module, we compute
 * the power by combining our HSpice results, the activity factor of
 * the module as reported by MASE, and the clock frequency").
 *
 * Fixed overheads follow the paper's assumptions: the clock network
 * dissipates 35% of baseline power (halved, not quartered, in 3D);
 * leakage is 20% of baseline and unchanged by 3D or Thermal Herding.
 * A single global scale, set once against the 90 W dual-core mpeg2
 * baseline, converts the analytical model's relative energies into
 * absolute watts.
 */

#ifndef TH_POWER_POWER_MODEL_H
#define TH_POWER_POWER_MODEL_H

#include <array>

#include "circuit/blocks.h"
#include "core/pipeline.h"
#include "floorplan/floorplan.h"

namespace th {

/** Fixed power-accounting assumptions (Section 4). */
struct PowerConfig
{
    double baselineTotalW = 90.0; ///< Dual-core mpeg2 planar total.
    double clockFrac = 0.35;      ///< Clock share of baseline power.
    double leakFrac = 0.20;       ///< Leakage share of baseline power.
    double baseFreqGhz = 2.66;
    /** Clock-network power scale for the 3D organisation (footprint
     *  quartered, power conservatively halved). */
    double clock3dScale = 0.5;
    int numCores = 2;
};

/** Power of one block split across the four dies (watts). */
struct BlockPower
{
    std::array<double, kNumDies> dieW{};

    double total() const
    {
        double t = 0.0;
        for (double w : dieW)
            t += w;
        return t;
    }
};

/** Full chip power breakdown for one configuration/workload. */
struct PowerResult
{
    double clockW = 0.0;
    double leakW = 0.0;
    /** Dynamic power of one core's blocks (cores are symmetric). */
    std::array<BlockPower, kNumCoreBlocks> coreBlocks{};
    BlockPower l2;
    int numCores = 2;

    /** Dynamic power of one core. */
    double coreDynamicW() const;

    /** Total dynamic power (all cores + L2). */
    double dynamicW() const
    {
        return coreDynamicW() * numCores + l2.total();
    }

    /** Total chip power. */
    double totalW() const { return clockW + leakW + dynamicW(); }

    /** Fraction of herded-block dynamic power on the top die. */
    double topDieFraction() const;
};

/**
 * The power model. Construct with the circuit block library, calibrate
 * once against the planar baseline run, then evaluate any run.
 */
class PowerModel
{
  public:
    explicit PowerModel(const BlockLibrary &lib,
                        const PowerConfig &cfg = PowerConfig{});

    /**
     * Set the global dynamic-power scale so the given planar run
     * (dual-core mpeg2 in the paper) totals cfg.baselineTotalW.
     */
    void calibrate(const CoreResult &baseline_run,
                   const CoreConfig &baseline_cfg);

    /** True once calibrate() has run. */
    bool calibrated() const { return dyn_scale_ > 0.0; }

    /**
     * Compute the chip power for a run. @p core_cfg decides which
     * energy table (2D/3D) applies and the clock scaling.
     */
    PowerResult compute(const CoreResult &run,
                        const CoreConfig &core_cfg) const;

    const PowerConfig &config() const { return cfg_; }

  private:
    PowerResult computeRaw(const CoreResult &run,
                           const CoreConfig &core_cfg,
                           double scale) const;

    const BlockLibrary &lib_;
    PowerConfig cfg_;
    double dyn_scale_ = 0.0;
};

} // namespace th

#endif // TH_POWER_POWER_MODEL_H
