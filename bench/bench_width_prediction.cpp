/**
 * @file
 * Regenerates the width-prediction statistics behind Sections 3.5-3.8:
 * per-benchmark predictor accuracy (the paper reports 97% of fetched
 * instructions correctly predicted), unsafe-misprediction rates, LSQ
 * partial-address-memoization hit rates, and the D-cache partial value
 * encoding coverage.
 */

#include <iostream>

#include "common/table.h"
#include "sim/experiments.h"
#include "sim/paper_targets.h"

int
main()
{
    using namespace th;

    SimOptions opts;
    opts.instructions = 150000;
    opts.warmupInstructions = 90000;
    System sys(opts);

    std::cout << "Running the Thermal Herding width study...\n\n";
    const WidthStudyData data = runWidthStudy(sys);

    Table t({"Benchmark", "Accuracy", "Unsafe", "PAM hits",
             "PVE encodable", "D$ herded", "<=16b results",
             "ROB lo:hi"});
    for (const auto &row : data.rows) {
        t.addRow({row.name, fmtPercent(row.accuracy),
                  fmtPercent(row.unsafeRate),
                  fmtPercent(row.pamHitRate),
                  fmtPercent(row.pveEncodable),
                  fmtPercent(row.lowWidthFrac),
                  fmtPercent(row.narrowResults),
                  fmtDouble(row.robLowReadRatio, 1) + "x"});
    }
    t.print(std::cout);

    std::cout << "\noverall width accuracy: "
              << fmtPercent(data.overallAccuracy) << " (paper "
              << fmtPercent(paper::kWidthAccuracy) << ")\n";
    return 0;
}
