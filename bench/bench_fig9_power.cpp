/**
 * @file
 * Regenerates Figure 9 of the paper (Section 5.2): the power
 * distribution of the dual-core mpeg2 workload on (a) the planar
 * baseline, (b) 3D without Thermal Herding, (c) 3D with Thermal
 * Herding, plus the per-application total-power saving range.
 *
 * Paper anchors: 90 W -> 72.7 W (-19%) -> 64.3 W (-29%); savings range
 * 15% (yacr2) to 30% (susan).
 */

#include <iostream>

#include "common/table.h"
#include "floorplan/floorplan.h"
#include "sim/experiments.h"
#include "sim/paper_targets.h"

namespace {

void
printBreakdown(const th::PowerBreakdown &b)
{
    using namespace th;
    std::cout << b.config << ": total " << fmtDouble(b.totalW, 1)
              << " W (clock " << fmtDouble(b.clockW, 1) << ", leakage "
              << fmtDouble(b.leakW, 1) << ", dynamic "
              << fmtDouble(b.dynamicW, 1) << ")\n";
    Table t({"Block", "Watts", "Share of dynamic"});
    for (int i = 0; i < kNumCoreBlocks; ++i) {
        const double w = b.blockW[static_cast<size_t>(i)];
        if (w < 0.005)
            continue;
        t.addRow({blockName(static_cast<BlockId>(i)), fmtDouble(w, 2),
                  fmtPercent(w / b.dynamicW)});
    }
    t.addRow({"L2", fmtDouble(b.l2W, 2), fmtPercent(b.l2W / b.dynamicW)});
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    using namespace th;

    SimOptions opts;
    opts.instructions = 150000;
    opts.warmupInstructions = 90000;
    System sys(opts);

    std::cout << "Running the power study (reference app: "
              << System::kPowerReferenceBenchmark << ")...\n\n";
    const Fig9Data data = runFigure9(sys);

    std::cout << "=== Figure 9(a-c): dual-core mpeg2 power ===\n\n";
    printBreakdown(data.planar);
    printBreakdown(data.noTh3d);
    printBreakdown(data.th3d);

    std::cout << "=== Per-application total power: Base vs 3D-TH ===\n\n";
    Table t({"Benchmark", "Base (W)", "3D-TH (W)", "Saving"});
    for (const auto &s : data.savings) {
        t.addRow({s.name, fmtDouble(s.baseW, 1), fmtDouble(s.th3dW, 1),
                  fmtPercent(s.saving)});
    }
    t.print(std::cout);

    std::cout << "\n=== Anchors vs paper ===\n";
    std::cout << "planar total: " << fmtDouble(data.planar.totalW, 1)
              << " W (paper " << fmtDouble(paper::kBaselinePowerW, 1)
              << ")\n";
    std::cout << "3D no-TH:     " << fmtDouble(data.noTh3d.totalW, 1)
              << " W (paper " << fmtDouble(paper::k3dNoThPowerW, 1)
              << ")\n";
    std::cout << "3D TH:        " << fmtDouble(data.th3d.totalW, 1)
              << " W (paper " << fmtDouble(paper::k3dThPowerW, 1)
              << ")\n";
    std::cout << "min saving:   " << data.minSaving.name << " "
              << fmtPercent(data.minSaving.saving) << " (paper yacr2 "
              << fmtPercent(paper::kMinPowerSaving) << ")\n";
    std::cout << "max saving:   " << data.maxSaving.name << " "
              << fmtPercent(data.maxSaving.saving) << " (paper susan "
              << fmtPercent(paper::kMaxPowerSaving) << ")\n";
    return 0;
}
