/**
 * @file
 * Regenerates Figure 10 of the paper (Section 5.3): worst-case thermal
 * maps for the planar baseline, 3D without Thermal Herding, and 3D
 * with Thermal Herding; the iso-power (4x power density) what-if; and
 * the same-application comparison including the ROB cooling effect.
 *
 * Paper anchors: 360 K planar (scheduler hotspot), 377 K 3D-noTH
 * (+17 K), 372 K 3D-TH (+12 K; D-cache hotspot under yacr2), 418 K for
 * 90 W at 2.66 GHz on the stack, ROB ~5 K cooler than planar.
 */

#include <iostream>

#include "common/table.h"
#include "sim/experiments.h"
#include "sim/paper_targets.h"

namespace {

void
printCase(const th::ThermalCase &tc)
{
    using namespace th;
    std::cout << tc.config << " (" << tc.app << ", "
              << fmtDouble(tc.totalW, 1) << " W): peak "
              << fmtDouble(tc.report.peakK, 1) << " K at "
              << tc.report.hottestBlock << " (die "
              << tc.report.hottestDie << ")\n";
}

void
printHotBlocks(const th::ThermalReport &rep, int count)
{
    using namespace th;
    std::vector<const BlockTemp *> sorted;
    for (const auto &b : rep.blocks)
        if (b.core != 1) // cores are symmetric; show core 0 + L2
            sorted.push_back(&b);
    std::sort(sorted.begin(), sorted.end(),
              [](const BlockTemp *a, const BlockTemp *b) {
                  return a->peakK > b->peakK;
              });
    Table t({"Block", "Die", "Power (W)", "Avg (K)", "Peak (K)"});
    for (int i = 0; i < count && i < static_cast<int>(sorted.size());
         ++i) {
        const BlockTemp *b = sorted[static_cast<size_t>(i)];
        t.addRow({blockName(b->id), std::to_string(b->die),
                  fmtDouble(b->powerW, 2), fmtDouble(b->avgK, 1),
                  fmtDouble(b->peakK, 1)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    using namespace th;

    SimOptions opts;
    opts.instructions = 150000;
    opts.warmupInstructions = 90000;
    System sys(opts);

    std::cout << "Scanning candidate applications for worst-case "
                 "hotspots...\n\n";
    const Fig10Data data = runFigure10(sys);

    std::cout << "=== Figure 10(a-c): worst-case temperatures ===\n\n";
    printCase(data.worstPlanar);
    printCase(data.worstNoTh3d);
    printCase(data.worstTh3d);

    const double inc_no_th = data.worstNoTh3d.report.peakK -
        data.worstPlanar.report.peakK;
    const double inc_th = data.worstTh3d.report.peakK -
        data.worstPlanar.report.peakK;
    std::cout << "\n3D increase without TH: +" << fmtDouble(inc_no_th, 1)
              << " K (paper +17)\n";
    std::cout << "3D increase with TH:    +" << fmtDouble(inc_th, 1)
              << " K (paper +12)\n";
    if (inc_no_th > 0.0) {
        std::cout << "reduction of the increase: "
                  << fmtPercent((inc_no_th - inc_th) / inc_no_th)
                  << " (paper 29%)\n";
    }

    std::cout << "\n=== Iso-power what-if: planar wattage on the 3D "
                 "stack at 2.66 GHz ===\n\n";
    printCase(data.isoPower);
    std::cout << "(paper: " << fmtDouble(paper::kPeakIsoPowerK, 0)
              << " K — a " << fmtDouble(paper::kPeakIsoPowerK - 360.0, 0)
              << " K rise over the planar chip)\n";

    std::cout << "\n=== Figure 10(d-f): all configurations on "
              << data.sameApp << " ===\n\n";
    printCase(data.samePlanar);
    printHotBlocks(data.samePlanar.report, 6);
    printCase(data.sameNoTh3d);
    printHotBlocks(data.sameNoTh3d.report, 6);
    printCase(data.sameTh3d);
    printHotBlocks(data.sameTh3d.report, 6);

    std::cout << "ROB peak temperature, 3D-TH minus planar: "
              << fmtDouble(data.robDeltaK, 1)
              << " K (paper ~-5: the ROB's 5x/2x low-width read/write "
                 "ratio herds it cold)\n";
    return 0;
}
