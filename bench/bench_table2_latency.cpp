/**
 * @file
 * Regenerates Table 2 of the paper: 2D vs 3D latency for each major
 * processor block, the two frequency-critical loops, and the derived
 * clock frequencies (Section 5.1.1).
 *
 * Paper anchors: wakeup-select -32%, ALU+bypass -36% (adder only ~3 of
 * those 36 points), clock 2.66 GHz -> 3.93 GHz (+47.9%).
 */

#include <iostream>

#include "circuit/blocks.h"
#include "common/table.h"
#include "sim/paper_targets.h"

int
main()
{
    using namespace th;

    BlockLibrary lib;

    std::cout << "=== Table 2: block latencies, 2D vs 3D (4-die) ===\n\n";
    Table table({"Block", "2D (ps)", "3D (ps)", "Improvement", ""});
    for (const auto &b : lib.table2()) {
        table.addRow({b.name, fmtDouble(b.lat2dPs, 1),
                      fmtDouble(b.lat3dPs, 1),
                      fmtPercent(b.improvement()),
                      b.critical ? "<- critical loop" : ""});
    }
    table.print(std::cout);

    std::cout << "\n=== Clock frequency (critical-loop analysis) ===\n\n";
    Table freq({"Quantity", "Measured", "Paper"});
    freq.addRow({"2D cycle time (ps)", fmtDouble(lib.clockPeriod2dPs(), 1),
                 fmtDouble(1000.0 / paper::kFreq2dGhz, 1)});
    freq.addRow({"3D cycle time (ps)", fmtDouble(lib.clockPeriod3dPs(), 1),
                 fmtDouble(1000.0 / paper::kFreq3dGhz, 1)});
    freq.addRow({"2D frequency (GHz)", fmtDouble(lib.frequency2dGhz(), 2),
                 fmtDouble(paper::kFreq2dGhz, 2)});
    freq.addRow({"3D frequency (GHz)", fmtDouble(lib.frequency3dGhz(), 2),
                 fmtDouble(paper::kFreq3dGhz, 2)});
    freq.addRow({"Frequency gain", fmtPercent(lib.frequencyGain() - 1.0),
                 fmtPercent(paper::kFreqGain - 1.0)});
    freq.print(std::cout);

    const BlockTiming *wakeup = lib.find("Scheduler (wakeup-select)");
    const BlockTiming *alu = lib.find("ALU + bypass loop");
    std::cout << "\nwakeup-select improvement: "
              << fmtPercent(wakeup->improvement()) << " (paper "
              << fmtPercent(paper::kWakeupSelectImprovement) << ")\n";
    std::cout << "ALU+bypass improvement:    "
              << fmtPercent(alu->improvement()) << " (paper "
              << fmtPercent(paper::kAluBypassImprovement) << ")\n";
    return 0;
}
