/**
 * @file
 * Thermal-solver microbenchmark: times steady-state solves of the
 * 4-die stack at grid resolutions 32/64/128 for both steady solvers
 * (red-black SOR and geometric multigrid) at 1 and 4 worker threads,
 * and emits JSON so BENCH_*.json files can track the solver's perf
 * trajectory across PRs. The repeat solve is seeded from the first
 * solve's converged field, so warm_steady_ms measures the warm-start
 * path (not a from-ambient resolve, which an earlier revision of this
 * bench mistakenly timed as "cached").
 *
 * Usage: bench_solver [output.json]   (always prints to stdout too)
 *        bench_solver --smoke
 *
 * --smoke runs only grid 64 at 4 threads and exits nonzero if the
 * multigrid solver regresses: cycle count above a pinned bound, or
 * peak temperature drifting from SOR's by more than a fixed margin.
 * The margin is dominated by SOR's own stopping error (its per-sweep
 * delta understates true error at large grids), not by multigrid's.
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/threadpool.h"
#include "thermal/hotspot.h"

namespace {

using namespace th;

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** A stacked grid with a Figure-10-style hotspot power map. */
ThermalGrid
makeGrid(int grid_n, SolverKind solver)
{
    ThermalParams p;
    p.gridN = grid_n;
    p.solver = solver;
    ThermalGrid grid(p, HotspotModel::stackedStack(), 10.5, 10.5);
    for (int die = 0; die < kNumDies; ++die) {
        grid.addPower(die, 0.0, 0.0, 10.5, 10.5, 8.0);
        // Concentrated hotspot in one corner, like a herded ROB/RS.
        grid.addPower(die, 1.0, 1.0, 2.0, 2.0, 6.0);
    }
    return grid;
}

struct Case
{
    int gridN = 0;
    const char *solver = "";
    int threads = 0;
    double steadyMs = 0.0;
    int steadyIters = 0; ///< SOR sweeps or multigrid cycles.
    int vcycles = 0;     ///< Multigrid cycles (0 for SOR).
    double contraction = 0.0; ///< Final-cycle delta ratio (MG only).
    double estErrorK = 0.0;   ///< Error-to-fixed-point bound (K).
    double steadyPeakK = 0.0;
    double warmSteadyMs = 0.0; ///< Repeat solve seeded from `steady`.
    int warmIters = 0;
};

Case
runCase(int grid_n, SolverKind solver, int threads)
{
    Case c;
    c.gridN = grid_n;
    c.solver = solverKindName(solver);
    c.threads = threads;
    ThreadPool::setGlobalThreads(threads);
    ThermalGrid grid = makeGrid(grid_n, solver);

    ThermalGrid::SolveStats stats;
    auto t0 = std::chrono::steady_clock::now();
    const ThermalField steady = grid.solve(&stats);
    c.steadyMs = msSince(t0);
    c.steadyIters = stats.iterations;
    c.vcycles = stats.vcycles;
    c.contraction = stats.contraction;
    c.estErrorK = stats.estErrorK;
    c.steadyPeakK = steady.peak(grid.dieLayers());

    // Repeat solve seeded from the converged field: the DTM loop's
    // common case (small power deltas between intervals).
    t0 = std::chrono::steady_clock::now();
    grid.solve(&stats, &steady);
    c.warmSteadyMs = msSince(t0);
    c.warmIters = stats.iterations;
    return c;
}

int
runSmoke()
{
    // Pinned bounds for CI (see DESIGN.md §11). Measured on this
    // power map: ~10 W-cycles at grid 64, |peak_mg - peak_sor| well
    // under 0.1 K with SOR's stopping error the dominant term.
    constexpr int kMaxVCycles = 16;
    constexpr double kPeakToleranceK = 0.5;

    const Case sor = runCase(64, SolverKind::Sor, 4);
    const Case mg = runCase(64, SolverKind::Multigrid, 4);
    const double dpeak = std::fabs(mg.steadyPeakK - sor.steadyPeakK);
    std::cerr << "smoke: sor " << sor.steadyMs << " ms ("
              << sor.steadyIters << " sweeps, peak " << sor.steadyPeakK
              << " K), multigrid " << mg.steadyMs << " ms ("
              << mg.vcycles << " cycles, peak " << mg.steadyPeakK
              << " K, contraction " << mg.contraction
              << ", est error " << mg.estErrorK << " K), |dpeak| "
              << dpeak << " K\n";
    bool ok = true;
    if (mg.vcycles > kMaxVCycles) {
        std::cerr << "FAIL: multigrid took " << mg.vcycles
                  << " cycles at grid 64 (bound " << kMaxVCycles
                  << ")\n";
        ok = false;
    }
    if (dpeak > kPeakToleranceK) {
        std::cerr << "FAIL: solver peaks disagree by " << dpeak
                  << " K at grid 64 (bound " << kPeakToleranceK
                  << " K)\n";
        ok = false;
    }
    if (mg.warmIters > mg.steadyIters) {
        std::cerr << "FAIL: warm-started solve took " << mg.warmIters
                  << " cycles, cold took " << mg.steadyIters << "\n";
        ok = false;
    }
    if (ok)
        std::cerr << "smoke: OK\n";
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0)
        return runSmoke();

    std::ostringstream json;
    json << "{\n  \"benchmark\": \"thermal_solver\",\n"
         << "  \"schema\": 3,\n  \"cases\": [\n";
    bool first = true;
    for (int grid_n : {32, 64, 128}) {
        for (SolverKind solver :
             {SolverKind::Sor, SolverKind::Multigrid}) {
            for (int threads : {1, 4}) {
                const Case c = runCase(grid_n, solver, threads);
                if (!first)
                    json << ",\n";
                first = false;
                json << "    {\"grid\": " << c.gridN
                     << ", \"solver\": \"" << c.solver << "\""
                     << ", \"threads\": " << c.threads
                     << ", \"steady_ms\": " << c.steadyMs
                     << ", \"steady_iterations\": " << c.steadyIters
                     << ", \"vcycles\": " << c.vcycles
                     << ", \"contraction\": " << c.contraction
                     << ", \"est_error_k\": " << c.estErrorK
                     << ", \"steady_peak_k\": " << c.steadyPeakK
                     << ", \"warm_steady_ms\": " << c.warmSteadyMs
                     << ", \"warm_iterations\": " << c.warmIters
                     << "}";
                std::cerr << "grid " << c.gridN << " " << c.solver
                          << " t" << c.threads << ": steady "
                          << c.steadyMs << " ms (" << c.steadyIters
                          << " iters), warm " << c.warmSteadyMs
                          << " ms (" << c.warmIters << " iters)\n";
            }
        }
    }
    json << "\n  ]\n}\n";

    std::cout << json.str();
    if (argc > 1) {
        std::ofstream out(argv[1]);
        out << json.str();
    }
    return 0;
}
