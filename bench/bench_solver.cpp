/**
 * @file
 * Thermal-solver microbenchmark: times steady-state and transient
 * solves of the 4-die stack at grid resolutions 32/64/128 for both
 * SOR orderings, and emits JSON so BENCH_*.json files can track the
 * solver's perf trajectory across PRs.
 *
 * Usage: bench_solver [output.json]   (always prints to stdout too)
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "thermal/hotspot.h"

namespace {

using namespace th;

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** A stacked grid with a Figure-10-style hotspot power map. */
ThermalGrid
makeGrid(int grid_n, SorOrdering ordering)
{
    ThermalParams p;
    p.gridN = grid_n;
    p.sorOrdering = ordering;
    ThermalGrid grid(p, HotspotModel::stackedStack(), 10.5, 10.5);
    for (int die = 0; die < kNumDies; ++die) {
        grid.addPower(die, 0.0, 0.0, 10.5, 10.5, 8.0);
        // Concentrated hotspot in one corner, like a herded ROB/RS.
        grid.addPower(die, 1.0, 1.0, 2.0, 2.0, 6.0);
    }
    return grid;
}

struct Case
{
    int gridN = 0;
    const char *ordering = "";
    double steadyMs = 0.0;
    int steadyIters = 0;
    double steadyPeakK = 0.0;
    double transientMs = 0.0;
    double rebuildSteadyMs = 0.0; ///< Second solve, cached network.
};

Case
runCase(int grid_n, SorOrdering ordering)
{
    Case c;
    c.gridN = grid_n;
    c.ordering =
        ordering == SorOrdering::RedBlack ? "red-black" : "lexicographic";
    ThermalGrid grid = makeGrid(grid_n, ordering);

    ThermalGrid::SolveStats stats;
    auto t0 = std::chrono::steady_clock::now();
    const ThermalField steady = grid.solve(&stats);
    c.steadyMs = msSince(t0);
    c.steadyIters = stats.iterations;
    c.steadyPeakK = steady.peak(grid.dieLayers());

    // 5 ms of transient from the steady field (throttling-loop shape).
    t0 = std::chrono::steady_clock::now();
    const auto tr = grid.solveTransient(steady, 0.005, 1e-4, 10);
    c.transientMs = msSince(t0);

    // Steady again: measures the benefit of the cached network.
    t0 = std::chrono::steady_clock::now();
    grid.solve();
    c.rebuildSteadyMs = msSince(t0);
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    std::ostringstream json;
    json << "{\n  \"benchmark\": \"thermal_solver\",\n  \"cases\": [\n";
    bool first = true;
    for (int grid_n : {32, 64, 128}) {
        for (SorOrdering ord :
             {SorOrdering::Lexicographic, SorOrdering::RedBlack}) {
            const Case c = runCase(grid_n, ord);
            if (!first)
                json << ",\n";
            first = false;
            json << "    {\"grid\": " << c.gridN
                 << ", \"ordering\": \"" << c.ordering << "\""
                 << ", \"steady_ms\": " << c.steadyMs
                 << ", \"steady_iterations\": " << c.steadyIters
                 << ", \"steady_peak_k\": " << c.steadyPeakK
                 << ", \"transient_ms\": " << c.transientMs
                 << ", \"cached_steady_ms\": " << c.rebuildSteadyMs
                 << "}";
            std::cerr << "grid " << c.gridN << " " << c.ordering
                      << ": steady " << c.steadyMs << " ms ("
                      << c.steadyIters << " iters), transient "
                      << c.transientMs << " ms, cached steady "
                      << c.rebuildSteadyMs << " ms\n";
        }
    }
    json << "\n  ]\n}\n";

    std::cout << json.str();
    if (argc > 1) {
        std::ofstream out(argv[1]);
        out << json.str();
    }
    return 0;
}
