/**
 * @file
 * Regenerates Figure 8 of the paper (Section 5.1.2):
 *  (a) geometric-mean IPC per benchmark class for the Base / TH /
 *      Pipe / Fast / 3D configurations,
 *  (b) performance in instructions per nanosecond (IPns),
 *  (c) relative speedup of the 3D processor over the baseline.
 *
 * Paper anchors: mean speedup 47.0% (min 7% mcf, max 77% patricia,
 * crafty 65%); SPECfp2000 only 29.5%; other groups 49.4-51.5%.
 */

#include <iostream>

#include "common/table.h"
#include "sim/experiments.h"
#include "sim/paper_targets.h"

int
main()
{
    using namespace th;

    SimOptions opts;
    opts.instructions = 200000;
    opts.warmupInstructions = 120000;
    System sys(opts);

    std::cout << "Running all benchmarks on 5 configurations ("
              << opts.instructions << " insts each)...\n\n";
    const Fig8Data data = runFigure8(sys);

    std::cout << "=== Figure 8(a): geometric-mean IPC per class ===\n\n";
    Table ipc({"Class", "Base", "TH", "Pipe", "Fast", "3D"});
    for (const auto &g : data.groups) {
        ipc.addRow({g.suite, fmtDouble(g.ipcGeomean[0], 3),
                    fmtDouble(g.ipcGeomean[1], 3),
                    fmtDouble(g.ipcGeomean[2], 3),
                    fmtDouble(g.ipcGeomean[3], 3),
                    fmtDouble(g.ipcGeomean[4], 3)});
    }
    ipc.addRow({"M-of-M", fmtDouble(data.ipcMeanOfMeans[0], 3),
                fmtDouble(data.ipcMeanOfMeans[1], 3),
                fmtDouble(data.ipcMeanOfMeans[2], 3),
                fmtDouble(data.ipcMeanOfMeans[3], 3),
                fmtDouble(data.ipcMeanOfMeans[4], 3)});
    ipc.print(std::cout);

    std::cout << "\n=== Figure 8(b): instructions per nanosecond ===\n\n";
    Table ipns({"Class", "Base", "TH", "Pipe", "Fast", "3D"});
    for (const auto &g : data.groups) {
        ipns.addRow({g.suite, fmtDouble(g.ipnsGeomean[0], 2),
                     fmtDouble(g.ipnsGeomean[1], 2),
                     fmtDouble(g.ipnsGeomean[2], 2),
                     fmtDouble(g.ipnsGeomean[3], 2),
                     fmtDouble(g.ipnsGeomean[4], 2)});
    }
    ipns.print(std::cout);

    std::cout << "\n=== Figure 8(c): 3D speedup over Base per class ===\n\n";
    Table sp({"Class", "Speedup"});
    for (const auto &g : data.groups)
        sp.addRow({g.suite, fmtPercent(g.speedup)});
    sp.addRow({"Mean-of-means", fmtPercent(data.speedupMeanOfMeans)});
    sp.print(std::cout);

    std::cout << "\n=== Per-benchmark speedups ===\n\n";
    Table per({"Benchmark", "Suite", "IPC Base", "IPC 3D", "Speedup"});
    for (const auto &b : data.benchmarks) {
        per.addRow({b.name, b.suite, fmtDouble(b.ipc[0], 3),
                    fmtDouble(b.ipc[4], 3), fmtPercent(b.speedup)});
    }
    per.print(std::cout);

    std::cout << "\n=== Anchors vs paper ===\n";
    std::cout << "mean speedup: " << fmtPercent(data.speedupMeanOfMeans)
              << " (paper " << fmtPercent(paper::kMeanSpeedup) << ")\n";
    std::cout << "min: " << data.minBenchmark << " "
              << fmtPercent(data.minSpeedup) << " (paper mcf "
              << fmtPercent(paper::kMinSpeedup) << ")\n";
    std::cout << "max: " << data.maxBenchmark << " "
              << fmtPercent(data.maxSpeedup) << " (paper patricia "
              << fmtPercent(paper::kMaxSpeedup) << ")\n";
    return 0;
}
