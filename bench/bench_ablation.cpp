/**
 * @file
 * Ablation study over the individual Thermal Herding mechanisms
 * (DESIGN.md section 4): starting from the full 3D configuration,
 * each mechanism is disabled in turn and the IPC, herded power
 * fraction, and chip power are compared.
 *
 * Mechanisms: top-die-first scheduler allocation (vs round-robin),
 * LSQ partial address memoization, the 2-bit partial value encoding
 * (vs a 1-bit zero-detect), and BTB target memoization.
 */

#include <iostream>

#include "common/table.h"
#include "sim/system.h"

namespace {

struct AblationRow
{
    std::string name;
    double ipc = 0.0;
    double totalW = 0.0;
    double topDieFrac = 0.0;
};

} // namespace

int
main()
{
    using namespace th;

    SimOptions opts;
    opts.instructions = 150000;
    opts.warmupInstructions = 90000;
    System sys(opts);

    const char *apps[] = {"mpeg2enc", "gzip", "yacr2"};

    for (const char *app : apps) {
        std::cout << "=== Ablation on " << app << " (3D config) ===\n\n";

        struct Variant
        {
            const char *name;
            void (*tweak)(CoreConfig &);
        };
        const Variant variants[] = {
            {"full 3D (all mechanisms)", [](CoreConfig &) {}},
            {"scheduler alloc: round-robin",
             [](CoreConfig &c) {
                 c.schedAlloc = SchedAllocPolicy::RoundRobin;
             }},
            {"PAM disabled",
             [](CoreConfig &c) { c.pamEnabled = false; }},
            {"PVE 1-bit (zeros only)",
             [](CoreConfig &c) { c.pveEnabled = false; }},
            {"BTB memoization disabled",
             [](CoreConfig &c) { c.btbMemoEnabled = false; }},
            {"width predictor: last-outcome",
             [](CoreConfig &c) {
                 c.widthPredKind = WidthPredKind::LastOutcome;
             }},
            {"width predictor: oracle (upper bound)",
             [](CoreConfig &c) {
                 c.widthPredKind = WidthPredKind::Oracle;
             }},
            {"width predictor: always-full",
             [](CoreConfig &c) {
                 c.widthPredKind = WidthPredKind::AlwaysFull;
             }},
            {"width prediction disabled (no herding)",
             [](CoreConfig &c) { c.thermalHerding = false; }},
        };

        Table t({"Variant", "IPC", "Total W", "Top-die dyn. share"});
        for (const Variant &v : variants) {
            CoreConfig cfg = makeConfig(ConfigKind::ThreeD,
                                        sys.circuits());
            v.tweak(cfg);
            const CoreResult run = sys.runCore(app, cfg);
            const PowerResult power = sys.power().compute(run, cfg);
            t.addRow({v.name, fmtDouble(run.perf.ipc(), 3),
                      fmtDouble(power.totalW(), 1),
                      fmtPercent(power.topDieFraction())});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
