/**
 * @file
 * google-benchmark microbenchmarks of the simulation library itself:
 * trace generation rate, core simulation throughput, predictor
 * operations, circuit-model construction, and the thermal solver.
 */

#include <benchmark/benchmark.h>

#include "circuit/blocks.h"
#include "core/branch_predictor.h"
#include "core/pipeline.h"
#include "core/width_predictor.h"
#include "thermal/hotspot.h"
#include "trace/generator.h"
#include "trace/suites.h"

namespace {

using namespace th;

void
BM_TraceGeneration(benchmark::State &state)
{
    SyntheticTrace trace(benchmarkByName("gzip"));
    TraceRecord rec;
    for (auto _ : state) {
        trace.next(rec);
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_CoreSimulation(benchmark::State &state)
{
    const auto insts = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        SyntheticTrace trace(benchmarkByName("gzip"));
        CoreConfig cfg;
        cfg.thermalHerding = true;
        Core core(cfg);
        const CoreResult r = core.run(trace, insts);
        benchmark::DoNotOptimize(r.perf.ipc());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_CoreSimulation)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void
BM_WidthPredictor(benchmark::State &state)
{
    WidthPredictor wp(4096);
    Addr pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(wp.predict(pc));
        wp.update(pc, Width::Low);
        pc += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WidthPredictor);

void
BM_HybridBranchPredictor(benchmark::State &state)
{
    CoreConfig cfg;
    HybridPredictor hp(cfg);
    Addr pc = 0x400000;
    bool taken = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hp.predict(pc));
        hp.update(pc, taken);
        taken = !taken;
        pc = 0x400000 + (pc + 4) % 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridBranchPredictor);

void
BM_BlockLibraryBuild(benchmark::State &state)
{
    for (auto _ : state) {
        BlockLibrary lib;
        benchmark::DoNotOptimize(lib.frequencyGain());
    }
}
BENCHMARK(BM_BlockLibraryBuild)->Unit(benchmark::kMicrosecond);

void
BM_ThermalSolve(benchmark::State &state)
{
    ThermalParams params;
    params.gridN = static_cast<int>(state.range(0));
    params.maxResidualK = 1e-3;
    for (auto _ : state) {
        ThermalGrid grid(params, HotspotModel::stackedStack(), 6.0, 6.0);
        for (int d = 0; d < kNumDies; ++d)
            grid.addPower(d, 0.5, 0.5, 5.0, 5.0, 15.0);
        const ThermalField f = grid.solve();
        benchmark::DoNotOptimize(f.peak(grid.dieLayers()));
    }
}
BENCHMARK(BM_ThermalSolve)->Arg(16)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
